#include "src/index/cp_tree.h"

#include <gtest/gtest.h>

#include "src/index/lcp.h"
#include "src/sim/generator.h"

namespace alae {
namespace {

// Oracle: the longest prefix of P[col_w..] shared with any earlier fork's
// suffix, via direct LCP comparison.
int64_t OracleSharedLen(const Sequence& p, const std::vector<int64_t>& cols,
                        size_t w) {
  LcpIndex lcp(p);
  int64_t best = 0;
  for (size_t u = 0; u < w; ++u) {
    best = std::max(best, static_cast<int64_t>(
                              lcp.Lcp(static_cast<size_t>(cols[u]),
                                      static_cast<size_t>(cols[w]))));
  }
  return best;
}

TEST(CpTree, PaperStyleExample) {
  // P=CACGTATACG with columns {1,3,5,7} (0-based for the paper's
  // j1=2, j2=4, j3=6, j4=8): suffixes ACGTATACG, GTATACG, ATACG, ACG.
  Sequence p = Sequence::FromString("CACGTATACG", Alphabet::Dna());
  CpTree tree(p, {1, 3, 5, 7});
  EXPECT_EQ(tree.Reuse(0).source, -1);
  EXPECT_EQ(tree.Reuse(1).length, 0);          // GT... shares nothing
  EXPECT_EQ(tree.Reuse(2).length, 1);          // "A" shared with fork 0
  EXPECT_EQ(tree.Reuse(2).source, 0);
  EXPECT_EQ(tree.Reuse(3).length, 3);          // "ACG" shared with fork 0
  EXPECT_EQ(tree.Reuse(3).source, 0);
}

TEST(CpTree, SharedLengthMatchesLcpOracle) {
  SequenceGenerator gen(51);
  for (int trial = 0; trial < 20; ++trial) {
    const Alphabet& alphabet = trial % 2 ? Alphabet::Dna() : Alphabet::Protein();
    int64_t m = 20 + static_cast<int64_t>(gen.rng().Below(100));
    Sequence p = gen.Random(m, alphabet);
    std::vector<int64_t> cols;
    for (int64_t j = static_cast<int64_t>(gen.rng().Below(4)); j < m;
         j += 1 + static_cast<int64_t>(gen.rng().Below(8))) {
      cols.push_back(j);
    }
    if (cols.empty()) continue;
    CpTree tree(p, cols);
    for (size_t w = 0; w < cols.size(); ++w) {
      ASSERT_EQ(tree.Reuse(w).length, OracleSharedLen(p, cols, w))
          << "trial " << trial << " fork " << w;
    }
  }
}

TEST(CpTree, SourceActuallySharesThePrefix) {
  SequenceGenerator gen(52);
  Sequence p = gen.Random(120, Alphabet::Dna());
  std::vector<int64_t> cols;
  for (int64_t j = 0; j < 110; j += 3) cols.push_back(j);
  CpTree tree(p, cols);
  LcpIndex lcp(p);
  for (size_t w = 0; w < cols.size(); ++w) {
    const CpTree::ReuseInfo& info = tree.Reuse(w);
    if (info.source < 0) continue;
    ASSERT_LT(static_cast<size_t>(info.source), w);
    // The reported source must share at least the reported length.
    EXPECT_GE(static_cast<int64_t>(
                  lcp.Lcp(static_cast<size_t>(cols[static_cast<size_t>(
                              info.source)]),
                          static_cast<size_t>(cols[w]))),
              info.length);
  }
}

TEST(CpTree, HighlyRepetitiveQueryBuildsCompactTree) {
  Sequence p = Sequence::FromString(std::string(60, 'A'), Alphabet::Dna());
  std::vector<int64_t> cols = {0, 10, 20, 30};
  CpTree tree(p, cols);
  // Suffixes are nested runs of A; everything shares with fork 0.
  EXPECT_EQ(tree.Reuse(1).source, 0);
  EXPECT_EQ(tree.Reuse(1).length, 50);
  EXPECT_EQ(tree.Reuse(3).length, 30);
  // Path compression keeps the node count linear in #forks.
  EXPECT_LE(tree.num_nodes(), 2 * cols.size() + 2);
}

TEST(CpTree, SingleFork) {
  Sequence p = Sequence::FromString("ACGTACGT", Alphabet::Dna());
  CpTree tree(p, {2});
  EXPECT_EQ(tree.Reuse(0).source, -1);
  EXPECT_EQ(tree.Reuse(0).length, 0);
}

}  // namespace
}  // namespace alae
