// Concurrency hammer for the sharded query service: many client threads,
// mixed backends, the cache on and a deliberately small worker pool, so
// scheduler fan-out, merger publication, cache LRU updates and backpressure
// all interleave. Run under ThreadSanitizer in CI (the `tsan` job); the
// assertions also hold in plain builds — every concurrent answer must be
// bit-identical to the single-threaded answer.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/service/service.h"
#include "src/sim/workload.h"

namespace alae {
namespace service {
namespace {

using api::SearchRequest;
using api::SearchResponse;

TEST(ServiceConcurrency, MixedBackendHammerMatchesSequentialAnswers) {
  WorkloadSpec spec;
  spec.text_length = 3'000;
  spec.query_length = 40;
  spec.num_queries = 6;
  spec.divergence = 0.2;
  spec.seed = 99;
  Workload w = BuildWorkload(spec);

  ShardedCorpusOptions options;
  options.shard_size = 700;
  options.overlap = 170;
  auto corpus = ShardedCorpus::Build(w.text, options);
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();

  const std::vector<std::string> backends = {"alae", "bwt-sw", "sw", "blast"};
  QueryScheduler scheduler(**corpus,
                           {.threads = 4, .cache_capacity = 16});

  // Sequential reference answers (also primes nothing: the cache is keyed
  // per request, and cached replay must equal recomputation anyway).
  std::vector<std::vector<AlignmentHit>> expected;
  for (size_t b = 0; b < backends.size(); ++b) {
    for (size_t q = 0; q < w.queries.size(); ++q) {
      SearchRequest request;
      request.query = w.queries[q];
      request.threshold = 16;
      api::StatusOr<SearchResponse> response =
          scheduler.Search(backends[b], request);
      ASSERT_TRUE(response.ok())
          << backends[b] << "/" << q << ": " << response.status().ToString();
      expected.push_back(response->hits);
    }
  }

  constexpr int kClients = 8;
  constexpr int kItersPerClient = 24;
  std::atomic<int> mismatches{0};
  std::atomic<int> rejected{0};
  auto client = [&](int id) {
    for (int it = 0; it < kItersPerClient; ++it) {
      const size_t pick =
          static_cast<size_t>(id * 31 + it * 7) %
          (backends.size() * w.queries.size());
      const size_t b = pick / w.queries.size();
      const size_t q = pick % w.queries.size();
      SearchRequest request;
      request.query = w.queries[q];
      request.threshold = 16;
      if (it % 3 == 0) {
        // A third of the traffic goes through the micro-batched entry.
        std::vector<api::QueryOutcome> outcomes =
            scheduler.SearchBatch(backends[b], {request, request});
        for (api::QueryOutcome& o : outcomes) {
          if (!o.ok()) {
            ++rejected;  // kResourceExhausted is legal under load
            continue;
          }
          if (o.response.hits != expected[pick]) ++mismatches;
        }
      } else {
        api::StatusOr<SearchResponse> response =
            scheduler.Search(backends[b], request);
        if (!response.ok()) {
          ++rejected;
          continue;
        }
        if (response->hits != expected[pick]) ++mismatches;
      }
    }
  };
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) clients.emplace_back(client, c);
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  // The queue is generously sized; with 8 clients of sequential requests
  // nothing should actually have been shed.
  EXPECT_EQ(rejected.load(), 0);
  EXPECT_GT(scheduler.cache().hits(), 0u)
      << "repeated identical requests never hit the cache";
}

// Backpressure under genuine overload must shed cleanly (no deadlock, no
// crash) and every accepted request must still answer correctly.
TEST(ServiceConcurrency, OverloadShedsWithResourceExhausted) {
  WorkloadSpec spec;
  spec.text_length = 2'000;
  spec.query_length = 30;
  spec.num_queries = 4;
  spec.seed = 123;
  Workload w = BuildWorkload(spec);
  ShardedCorpusOptions options;
  options.shard_size = 600;
  options.overlap = 140;
  auto corpus = ShardedCorpus::Build(w.text, options);
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
  // One worker and a queue of exactly one fan-out: concurrent clients race
  // for admission, losers get kResourceExhausted.
  QueryScheduler scheduler(
      **corpus,
      {.threads = 1,
       .queue_capacity = (*corpus)->num_shards(),
       .cache_capacity = 0});

  std::atomic<int> served{0};
  std::atomic<int> shed{0};
  std::atomic<int> errors{0};
  auto client = [&](int id) {
    for (int it = 0; it < 12; ++it) {
      SearchRequest request;
      request.query = w.queries[static_cast<size_t>(id + it) % w.queries.size()];
      request.threshold = 14;
      api::StatusOr<SearchResponse> response =
          scheduler.Search("sw", request);
      if (response.ok()) {
        ++served;
      } else if (response.status().code() ==
                 api::StatusCode::kResourceExhausted) {
        ++shed;
      } else {
        ++errors;
      }
    }
  };
  std::vector<std::thread> clients;
  for (int c = 0; c < 6; ++c) clients.emplace_back(client, c);
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(errors.load(), 0);
  EXPECT_GT(served.load(), 0) << "overload must not starve everyone";
}

}  // namespace
}  // namespace service
}  // namespace alae
