#include "src/index/qgram_index.h"

#include <gtest/gtest.h>

#include "src/sim/generator.h"

namespace alae {
namespace {

std::vector<int32_t> NaiveOccurrences(const Sequence& s, const Sequence& gram) {
  std::vector<int32_t> out;
  if (gram.size() > s.size()) return out;
  for (size_t i = 0; i + gram.size() <= s.size(); ++i) {
    bool ok = true;
    for (size_t k = 0; k < gram.size(); ++k) {
      if (s[i + k] != gram[k]) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(static_cast<int32_t>(i));
  }
  return out;
}

TEST(QGramIndex, MatchesNaiveDna) {
  SequenceGenerator gen(31);
  for (int q : {1, 2, 4, 8}) {
    Sequence query = gen.Random(300, Alphabet::Dna());
    QGramIndex index(query, q);
    for (int trial = 0; trial < 40; ++trial) {
      Sequence gram = gen.Random(q, Alphabet::Dna());
      EXPECT_EQ(index.Occurrences(gram.symbols().data()),
                NaiveOccurrences(query, gram))
          << "q=" << q;
    }
  }
}

TEST(QGramIndex, MatchesNaiveProteinUsesHashMap) {
  SequenceGenerator gen(32);
  // q=6 over sigma=20 exceeds the flat-table limit and exercises the map.
  Sequence query = gen.Random(500, Alphabet::Protein());
  QGramIndex index(query, 6);
  for (int trial = 0; trial < 20; ++trial) {
    // Half sampled from the query (guaranteed hits).
    Sequence gram = trial % 2 ? gen.Random(6, Alphabet::Protein())
                              : query.Substr(static_cast<size_t>(trial) * 7, 6);
    EXPECT_EQ(index.Occurrences(gram.symbols().data()),
              NaiveOccurrences(query, gram));
  }
}

TEST(QGramIndex, QueryShorterThanQ) {
  Sequence query = Sequence::FromString("ACG", Alphabet::Dna());
  QGramIndex index(query, 5);
  Sequence gram = Sequence::FromString("ACGTT", Alphabet::Dna());
  EXPECT_TRUE(index.Occurrences(gram.symbols().data()).empty());
}

TEST(QGramIndex, OccurrencesAreAscending) {
  Sequence query = Sequence::FromString("AAAAAAA", Alphabet::Dna());
  QGramIndex index(query, 3);
  Sequence gram = Sequence::FromString("AAA", Alphabet::Dna());
  const std::vector<int32_t>& occ = index.Occurrences(gram.symbols().data());
  ASSERT_EQ(occ.size(), 5u);
  for (size_t i = 1; i < occ.size(); ++i) EXPECT_LT(occ[i - 1], occ[i]);
}

TEST(QGramIndex, KeyOfIsConsistentWithRolling) {
  SequenceGenerator gen(33);
  Sequence query = gen.Random(100, Alphabet::Dna());
  QGramIndex index(query, 4);
  // Every position must be found under the key computed from scratch.
  for (size_t j = 0; j + 4 <= query.size(); ++j) {
    uint64_t key = index.KeyOf(query.symbols().data() + j);
    const auto& occ = index.Occurrences(key);
    EXPECT_NE(std::find(occ.begin(), occ.end(), static_cast<int32_t>(j)),
              occ.end())
        << "position " << j;
  }
}

}  // namespace
}  // namespace alae
