#include "src/core/filters.h"

#include <gtest/gtest.h>

#include "src/core/global_filter.h"
#include "src/core/reuse.h"
#include "src/index/lcp.h"
#include "src/io/sequence.h"

namespace alae {
namespace {

TEST(FilterContext, DefaultSchemeBounds) {
  AlaeConfig config;
  FilterContext f(ScoringScheme::Default(), /*query_len=*/100,
                  /*threshold=*/20, config);
  EXPECT_EQ(f.q(), 4);
  EXPECT_EQ(f.lmin(), 20);
  // Lmax = m + floor((H - (sa*m + sg)) / ss) = 100 + floor(-75 / -2) = 137.
  EXPECT_EQ(f.lmax(), 137);
  EXPECT_EQ(f.fgoe_threshold(), 7);
}

TEST(FilterContext, BoundIsMonotoneInRowAndColumn) {
  AlaeConfig config;
  FilterContext f(ScoringScheme::Default(), 100, 20, config);
  // Later columns leave fewer potential matches -> larger (tighter) bound.
  EXPECT_LE(f.Bound(10, 10), f.Bound(10, 95));
  // Later rows leave fewer potential rows -> larger bound.
  EXPECT_LE(f.Bound(10, 10), f.Bound(95, 10));
  // Never below the positivity floor.
  EXPECT_GE(f.Bound(1, 0), 0);
}

TEST(FilterContext, BoundNeverReachesThreshold) {
  // Cells at the threshold itself are results and must never be pruned:
  // bound <= H - 1 everywhere.
  AlaeConfig config;
  FilterContext f(ScoringScheme::Default(), 50, 12, config);
  for (int64_t i = 1; i <= f.lmax(); i += 7) {
    for (int64_t j = 0; j < 50; j += 5) {
      EXPECT_LE(f.Bound(i, j), 11);
    }
  }
}

TEST(FilterContext, ScoreFilterOffMeansPositivityOnly) {
  AlaeConfig config;
  config.score_filter = false;
  FilterContext f(ScoringScheme::Default(), 100, 20, config);
  EXPECT_EQ(f.Bound(99, 99), 0);
  EXPECT_EQ(f.Bound(1, 0), 0);
}

TEST(FilterContext, PrefixFilterOffForcesQ1) {
  AlaeConfig config;
  config.prefix_filter = false;
  FilterContext f(ScoringScheme::Default(), 100, 20, config);
  EXPECT_EQ(f.q(), 1);
}

TEST(FilterContext, LengthFilterOffUsesPositivityCap) {
  AlaeConfig on_config;
  AlaeConfig off_config;
  off_config.length_filter = false;
  FilterContext on(ScoringScheme::Default(), 100, 40, on_config);
  FilterContext off(ScoringScheme::Default(), 100, 40, off_config);
  EXPECT_LE(on.lmax(), off.lmax());
  EXPECT_EQ(off.lmax(), LengthUpperBound(ScoringScheme::Default(), 100, 1));
}

TEST(FilterContext, SmallThresholdShrinksQ) {
  AlaeConfig config;
  FilterContext f(ScoringScheme::Default(), 100, 2, config);
  EXPECT_EQ(f.q(), 2);  // ceil(2/1) < 4
}

TEST(BitsetGlobalFilter, SetAndTest) {
  BitsetGlobalFilter g;
  EXPECT_FALSE(g.Test(5, 7));
  g.Set(5, 7);
  EXPECT_TRUE(g.Test(5, 7));
  EXPECT_FALSE(g.Test(7, 5));
  g.Set(1LL << 30, 12345);
  EXPECT_TRUE(g.Test(1LL << 30, 12345));
  EXPECT_EQ(g.size(), 2u);
}

TEST(RowReuseGroup, FirstForkLeadsLaterForksFollow) {
  Sequence p = Sequence::FromString("ACGTACGTACGT", Alphabet::Dna());
  LcpIndex lcp(p);
  RowReuseGroup group(&lcp);
  group.NewRow();
  RowReuseGroup::Assignment a0 = group.Register(/*anchor=*/0, /*fgoe_col=*/0);
  EXPECT_EQ(a0.source_anchor, -1);  // leader
  RowReuseGroup::Assignment a1 = group.Register(4, 4);
  EXPECT_EQ(a1.source_anchor, 0);
  EXPECT_EQ(a1.shared_len, 8);  // suffixes 0 and 4 share ACGTACGT
  RowReuseGroup::Assignment a2 = group.Register(8, 8);
  EXPECT_EQ(a2.source_anchor, 0);  // always against the leader
  EXPECT_EQ(a2.shared_len, 4);
}

TEST(RowReuseGroup, NewRowResetsLeadership) {
  Sequence p = Sequence::FromString("AAAAAA", Alphabet::Dna());
  LcpIndex lcp(p);
  RowReuseGroup group(&lcp);
  group.NewRow();
  group.Register(0, 0);
  group.NewRow();
  RowReuseGroup::Assignment a = group.Register(2, 2);
  EXPECT_EQ(a.source_anchor, -1);  // fresh row, fresh leader
}

TEST(RowReuseGroup, NullLcpDisablesSharing) {
  RowReuseGroup group(nullptr);
  group.NewRow();
  group.Register(0, 0);
  RowReuseGroup::Assignment a = group.Register(4, 4);
  EXPECT_EQ(a.source_anchor, -1);
}

}  // namespace
}  // namespace alae
