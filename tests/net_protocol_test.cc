#include "src/net/protocol.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/align/result.h"

namespace alae {
namespace net {
namespace {

WireRequest SampleRequest() {
  WireRequest request;
  request.request_id = 7;
  request.backend = "alae";
  request.alphabet = kAlphabetDna;
  request.allow_partial = true;
  request.scheme.sa = 1;
  request.scheme.sb = -3;
  request.scheme.sg = -5;
  request.scheme.ss = -2;
  request.threshold = 25;
  request.max_hits = 100;
  request.deadline_ms = 1500;
  request.query = "ACGTACGTTGCA";
  return request;
}

std::vector<AlignmentHit> SampleHits() {
  std::vector<AlignmentHit> hits;
  AlignmentHit a;
  a.text_end = 10;
  a.query_end = 5;
  a.text_start = 2;
  a.score = 19;
  AlignmentHit b;
  b.text_end = 40;
  b.query_end = 11;
  b.text_start = -1;  // "not traced" stays representable
  b.score = 7;
  hits.push_back(a);
  hits.push_back(b);
  return hits;
}

// Feeds `bytes` and expects exactly one clean frame.
Frame MustReadOne(std::string_view bytes) {
  FrameReader reader;
  reader.Feed(bytes);
  Frame frame;
  api::Status error;
  EXPECT_EQ(reader.Next(&frame, &error), FrameReader::Result::kFrame)
      << error.ToString();
  EXPECT_EQ(reader.Next(&frame, &error), FrameReader::Result::kNeedMore);
  return frame;
}

TEST(NetProtocol, RequestRoundTrip) {
  const WireRequest request = SampleRequest();
  std::string bytes;
  AppendRequestFrame(request, &bytes);
  const Frame frame = MustReadOne(bytes);
  EXPECT_EQ(frame.header.type, kFrameRequest);
  EXPECT_EQ(frame.header.version, kProtocolVersion);
  EXPECT_EQ(frame.header.request_id, 7u);

  WireRequest decoded;
  ASSERT_TRUE(DecodeRequestPayload(frame.payload, &decoded).ok());
  decoded.request_id = frame.header.request_id;
  EXPECT_EQ(decoded.backend, "alae");
  EXPECT_EQ(decoded.alphabet, kAlphabetDna);
  EXPECT_TRUE(decoded.allow_partial);
  EXPECT_EQ(decoded.scheme.sa, 1);
  EXPECT_EQ(decoded.scheme.sb, -3);
  EXPECT_EQ(decoded.scheme.sg, -5);
  EXPECT_EQ(decoded.scheme.ss, -2);
  EXPECT_EQ(decoded.threshold, 25);
  EXPECT_EQ(decoded.max_hits, 100u);
  EXPECT_EQ(decoded.deadline_ms, 1500u);
  EXPECT_EQ(decoded.query, "ACGTACGTTGCA");
}

TEST(NetProtocol, HitsRoundTrip) {
  const std::vector<AlignmentHit> hits = SampleHits();
  std::string bytes;
  AppendHitsFrame(/*request_id=*/9, hits.data(), hits.size(), &bytes);
  const Frame frame = MustReadOne(bytes);
  EXPECT_EQ(frame.header.type, kFrameHits);
  EXPECT_EQ(frame.header.request_id, 9u);

  std::vector<AlignmentHit> decoded;
  ASSERT_TRUE(DecodeHitsPayload(frame.payload, &decoded).ok());
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0], hits[0]);
  EXPECT_EQ(decoded[1], hits[1]);
}

TEST(NetProtocol, StatusRoundTrip) {
  WireStatus status;
  status.code = WireCode::kResourceExhausted;
  status.retryable = true;
  status.stats.hits = 12;
  status.stats.engine_micros = 3456;
  status.stats.truncated = true;
  status.stats.truncated_by_deadline = false;
  status.message = "queue full; retry with backoff";

  std::string bytes;
  AppendStatusFrame(/*request_id=*/3, status, &bytes);
  const Frame frame = MustReadOne(bytes);
  EXPECT_EQ(frame.header.type, kFrameStatus);

  WireStatus decoded;
  ASSERT_TRUE(DecodeStatusPayload(frame.payload, &decoded).ok());
  EXPECT_EQ(decoded.code, WireCode::kResourceExhausted);
  EXPECT_TRUE(decoded.retryable);
  EXPECT_EQ(decoded.stats.hits, 12u);
  EXPECT_EQ(decoded.stats.engine_micros, 3456u);
  EXPECT_TRUE(decoded.stats.truncated);
  EXPECT_FALSE(decoded.stats.truncated_by_deadline);
  EXPECT_EQ(decoded.message, "queue full; retry with backoff");
}

TEST(NetProtocol, CancelRoundTrip) {
  std::string bytes;
  AppendCancelFrame(/*request_id=*/77, &bytes);
  const Frame frame = MustReadOne(bytes);
  EXPECT_EQ(frame.header.type, kFrameCancel);
  EXPECT_EQ(frame.header.request_id, 77u);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(NetProtocol, StatusCodeMappingsAgree) {
  // Every api code survives the wire round trip, and exactly one wire code
  // is retryable.
  const api::StatusCode api_codes[] = {
      api::StatusCode::kOk,           api::StatusCode::kInvalidArgument,
      api::StatusCode::kNotFound,     api::StatusCode::kFailedPrecondition,
      api::StatusCode::kInternal,     api::StatusCode::kResourceExhausted,
      api::StatusCode::kDeadlineExceeded, api::StatusCode::kCancelled,
  };
  for (api::StatusCode code : api_codes) {
    EXPECT_EQ(ApiCodeFor(WireCodeFor(code)), code);
  }
  int retryable = 0;
  for (uint8_t c = 0; c <= 8; ++c) {
    if (IsRetryable(static_cast<WireCode>(c))) ++retryable;
  }
  EXPECT_EQ(retryable, 1);
  EXPECT_TRUE(IsRetryable(WireCode::kResourceExhausted));
}

// --------------------------------------------------------------------------
// Incremental delivery: the reader must cope with any transport
// fragmentation, including one byte at a time (the slow-loris shape).
// --------------------------------------------------------------------------

TEST(NetProtocol, ByteAtATimeDelivery) {
  std::string bytes;
  AppendRequestFrame(SampleRequest(), &bytes);
  AppendCancelFrame(7, &bytes);

  FrameReader reader;
  Frame frame;
  api::Status error;
  std::vector<uint8_t> types;
  for (char c : bytes) {
    reader.Feed(&c, 1);
    while (reader.Next(&frame, &error) == FrameReader::Result::kFrame) {
      types.push_back(frame.header.type);
    }
  }
  ASSERT_EQ(types.size(), 2u);
  EXPECT_EQ(types[0], kFrameRequest);
  EXPECT_EQ(types[1], kFrameCancel);
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(NetProtocol, TruncatedFrameNeedsMore) {
  std::string bytes;
  AppendRequestFrame(SampleRequest(), &bytes);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    FrameReader reader;
    reader.Feed(bytes.data(), cut);
    Frame frame;
    api::Status error;
    EXPECT_EQ(reader.Next(&frame, &error), FrameReader::Result::kNeedMore)
        << "prefix of " << cut << " bytes";
  }
}

TEST(NetProtocol, OversizedLengthPrefixFailsBeforePayloadArrives) {
  // Header announcing 256 MiB: rejected from the header alone — the reader
  // must not wait for (or try to stage) the announced bytes.
  std::string bytes;
  AppendCancelFrame(1, &bytes);
  bytes[0] = static_cast<char>(0x00);
  bytes[1] = static_cast<char>(0x00);
  bytes[2] = static_cast<char>(0x00);
  bytes[3] = static_cast<char>(0x10);  // payload_len = 0x10000000

  FrameReader reader;
  reader.Feed(bytes);
  Frame frame;
  api::Status error;
  EXPECT_EQ(reader.Next(&frame, &error), FrameReader::Result::kError);
  EXPECT_EQ(error.code(), api::StatusCode::kInvalidArgument);

  // Poison latches: even valid follow-up bytes stay rejected.
  std::string good;
  AppendCancelFrame(2, &good);
  reader.Feed(good);
  EXPECT_EQ(reader.Next(&frame, &error), FrameReader::Result::kError);
}

TEST(NetProtocol, BadVersionAndUnknownTypeAreErrors) {
  for (int corrupt : {4, 5}) {  // byte 4 = version, byte 5 = type
    std::string bytes;
    AppendCancelFrame(1, &bytes);
    bytes[corrupt] = static_cast<char>(0x6f);
    FrameReader reader;
    reader.Feed(bytes);
    Frame frame;
    api::Status error;
    EXPECT_EQ(reader.Next(&frame, &error), FrameReader::Result::kError)
        << "corrupted header byte " << corrupt;
  }
}

TEST(NetProtocol, GarbageAfterValidFrameStopsCleanly) {
  std::string bytes;
  AppendRequestFrame(SampleRequest(), &bytes);
  bytes += "this is not a frame header, not even close....";

  FrameReader reader;
  reader.Feed(bytes);
  Frame frame;
  api::Status error;
  ASSERT_EQ(reader.Next(&frame, &error), FrameReader::Result::kFrame);
  EXPECT_EQ(frame.header.type, kFrameRequest);
  EXPECT_EQ(reader.Next(&frame, &error), FrameReader::Result::kError);
}

// --------------------------------------------------------------------------
// Malformed payloads: every decoder rejects cleanly, never over-reads.
// --------------------------------------------------------------------------

TEST(NetProtocol, TruncatedRequestPayloadRejected) {
  std::string bytes;
  AppendRequestFrame(SampleRequest(), &bytes);
  const std::string payload = bytes.substr(kHeaderSize);
  WireRequest out;
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(
        DecodeRequestPayload(std::string_view(payload).substr(0, cut), &out)
            .ok())
        << "prefix of " << cut << " bytes decoded";
  }
  EXPECT_TRUE(DecodeRequestPayload(payload, &out).ok());
}

TEST(NetProtocol, RequestLengthFieldsAreBoundsChecked) {
  std::string bytes;
  AppendRequestFrame(SampleRequest(), &bytes);
  std::string payload = bytes.substr(kHeaderSize);

  // backend_len pointing past the payload.
  std::string bad = payload;
  bad[0] = static_cast<char>(0xff);
  WireRequest out;
  EXPECT_FALSE(DecodeRequestPayload(bad, &out).ok());

  // query_len larger than the remaining bytes.
  bad = payload;
  bad[bad.size() - SampleRequest().query.size() - 4] =
      static_cast<char>(0xff);
  EXPECT_FALSE(DecodeRequestPayload(bad, &out).ok());

  // Trailing junk after a well-formed request is rejected too.
  bad = payload + "x";
  EXPECT_FALSE(DecodeRequestPayload(bad, &out).ok());
}

TEST(NetProtocol, HitsCountIsBoundsChecked) {
  const std::vector<AlignmentHit> hits = SampleHits();
  std::string bytes;
  AppendHitsFrame(1, hits.data(), hits.size(), &bytes);
  std::string payload = bytes.substr(kHeaderSize);

  // Count claims more hits than the payload carries.
  payload[0] = static_cast<char>(200);
  std::vector<AlignmentHit> out;
  EXPECT_FALSE(DecodeHitsPayload(payload, &out).ok());

  // Empty payload cannot even hold the count.
  EXPECT_FALSE(DecodeHitsPayload(std::string_view(), &out).ok());
}

TEST(NetProtocol, StatusMessageLengthIsBoundsChecked) {
  WireStatus status;
  status.code = WireCode::kInternal;
  status.message = "boom";
  std::string bytes;
  AppendStatusFrame(1, status, &bytes);
  std::string payload = bytes.substr(kHeaderSize);
  payload[payload.size() - status.message.size() - 1] =
      static_cast<char>(0x7f);
  WireStatus out;
  EXPECT_FALSE(DecodeStatusPayload(payload, &out).ok());
}

// --------------------------------------------------------------------------
// Deterministic fuzz: random bytes and random mutations must never crash
// the reader or the decoders (run under ASan in CI, where an over-read
// turns into a hard failure).
// --------------------------------------------------------------------------

class Lcg {
 public:
  explicit Lcg(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    return state_ >> 16;
  }
  char NextByte() { return static_cast<char>(Next() & 0xff); }

 private:
  uint64_t state_;
};

TEST(NetProtocolFuzz, RandomBytesNeverCrashTheReader) {
  for (uint64_t seed = 1; seed <= 32; ++seed) {
    Lcg rng(seed);
    FrameReader reader;
    Frame frame;
    api::Status error;
    bool dead = false;
    for (int chunk = 0; chunk < 64 && !dead; ++chunk) {
      std::string bytes;
      const size_t n = rng.Next() % 97;
      for (size_t i = 0; i < n; ++i) bytes.push_back(rng.NextByte());
      reader.Feed(bytes);
      while (true) {
        const FrameReader::Result r = reader.Next(&frame, &error);
        if (r == FrameReader::Result::kFrame) continue;
        if (r == FrameReader::Result::kError) dead = true;
        break;
      }
    }
    // Whatever happened, the reader's buffer never exceeds one max frame
    // plus one unparsed chunk (no unbounded staging).
    EXPECT_LE(reader.buffered(), kMaxPayload + kHeaderSize + 97);
  }
}

TEST(NetProtocolFuzz, MutatedValidFramesNeverCrashDecoders) {
  std::string request_bytes;
  AppendRequestFrame(SampleRequest(), &request_bytes);
  const std::vector<AlignmentHit> hits = SampleHits();
  std::string hits_bytes;
  AppendHitsFrame(2, hits.data(), hits.size(), &hits_bytes);
  WireStatus status;
  status.code = WireCode::kOk;
  status.message = "fine";
  std::string status_bytes;
  AppendStatusFrame(3, status, &status_bytes);

  Lcg rng(0xa11ce);
  for (const std::string* original :
       {&request_bytes, &hits_bytes, &status_bytes}) {
    for (int round = 0; round < 400; ++round) {
      std::string mutated = *original;
      const int flips = 1 + static_cast<int>(rng.Next() % 4);
      for (int f = 0; f < flips; ++f) {
        mutated[rng.Next() % mutated.size()] ^=
            static_cast<char>(1u << (rng.Next() % 8));
      }
      const std::string_view payload =
          std::string_view(mutated).substr(kHeaderSize);
      WireRequest req;
      std::vector<AlignmentHit> hv;
      WireStatus st;
      // Outcomes may be ok or error; the assertion is "no crash/over-read".
      (void)DecodeRequestPayload(payload, &req);
      (void)DecodeHitsPayload(payload, &hv);
      (void)DecodeStatusPayload(payload, &st);

      FrameReader reader;
      reader.Feed(mutated);
      Frame frame;
      api::Status error;
      while (reader.Next(&frame, &error) == FrameReader::Result::kFrame) {
      }
    }
  }
}

}  // namespace
}  // namespace net
}  // namespace alae
