// Parameterized property sweeps: exactness and counter invariants across
// the full BLAST scheme grid x alphabets, driven by TEST_P so every
// combination is an individually reported test case.

#include <gtest/gtest.h>

#include <tuple>

#include "src/baseline/smith_waterman.h"
#include "src/core/alae.h"
#include "src/sim/generator.h"
#include "src/stats/entry_bound.h"

namespace alae {
namespace {

using SweepParam = std::tuple<int /*scheme idx in BlastSchemeGrid*/,
                              int /*0=dna 1=protein*/>;

class SchemeSweepTest : public ::testing::TestWithParam<SweepParam> {
 protected:
  ScoringScheme Scheme() const {
    return BlastSchemeGrid()[static_cast<size_t>(std::get<0>(GetParam()))];
  }
  const Alphabet& Alpha() const {
    return std::get<1>(GetParam()) == 0 ? Alphabet::Dna()
                                        : Alphabet::Protein();
  }
};

TEST_P(SchemeSweepTest, AlaeExactUnderScheme) {
  SequenceGenerator gen(9000 + static_cast<uint64_t>(std::get<0>(GetParam())) *
                                   2 +
                        static_cast<uint64_t>(std::get<1>(GetParam())));
  Sequence text = gen.Random(150, Alpha());
  Sequence query = gen.HomologousQuery(text, 50, 0.7, 0.12, 0.04);
  ScoringScheme scheme = Scheme();
  // Pick a threshold that exercises both hits and pruning.
  int32_t h = 4 * scheme.sa + 2;
  ResultCollector truth = SmithWaterman::Run(text, query, scheme, h);
  AlaeIndex index(text);
  Alae engine(index);
  AlaeRunStats stats;
  ResultCollector got = engine.Run(query, scheme, h, &stats);
  ASSERT_EQ(truth.Sorted(), got.Sorted()) << scheme.ToString();
  // Counter invariants: accessed decomposes exactly; the q actually used
  // respects the effective-q rule.
  EXPECT_EQ(stats.counters.Accessed(),
            stats.counters.Calculated() + stats.counters.reused +
                stats.counters.assigned);
}

TEST_P(SchemeSweepTest, BoundConstantsAreWellFormed) {
  ScoringScheme scheme = Scheme();
  int sigma = Alpha().sigma();
  EntryBound b = ComputeEntryBound(scheme, sigma);
  EXPECT_GT(b.k1, 0) << scheme.ToString();
  EXPECT_GT(b.k2, 1.0) << scheme.ToString();
  EXPECT_LT(b.k2, sigma) << scheme.ToString();
  EXPECT_GT(b.exponent, 0.0);
  EXPECT_LT(b.exponent, 1.0);
  EXPECT_GT(b.coefficient, 0.0);
}

std::string SweepName(const ::testing::TestParamInfo<SweepParam>& info) {
  const ScoringScheme s =
      BlastSchemeGrid()[static_cast<size_t>(std::get<0>(info.param))];
  std::string name = "sa" + std::to_string(s.sa) + "_sb" +
                     std::to_string(-s.sb) + "_sg" + std::to_string(-s.sg) +
                     "_ss" + std::to_string(-s.ss);
  name += std::get<1>(info.param) == 0 ? "_dna" : "_protein";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    BlastGrid, SchemeSweepTest,
    ::testing::Combine(::testing::Range(0, 48), ::testing::Values(0, 1)),
    SweepName);

}  // namespace
}  // namespace alae
