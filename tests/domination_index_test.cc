#include "src/index/domination_index.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/sim/generator.h"

namespace alae {
namespace {

// Brute-force domination oracle: gram g (of length q) is dominated by
// character c iff g never occurs at position 0 and every occurrence at
// t >= 1 has text[t-1] == c.
std::map<std::string, int> OracleDomination(const Sequence& text, int q) {
  std::map<std::string, int> out;  // -1 = not dominated, else char code
  int64_t n = static_cast<int64_t>(text.size());
  for (int64_t t = 0; t + q <= n; ++t) {
    std::string key;
    for (int i = 0; i < q; ++i) key.push_back(static_cast<char>(text[t + i]));
    int pred = (t == 0) ? -1 : text[static_cast<size_t>(t - 1)];
    auto it = out.find(key);
    if (it == out.end()) {
      out[key] = pred;
    } else if (it->second != pred) {
      it->second = -1;
    }
  }
  return out;
}

TEST(DominationIndex, MatchesOracleRandom) {
  SequenceGenerator gen(71);
  for (int trial = 0; trial < 10; ++trial) {
    const Alphabet& alphabet = trial % 2 ? Alphabet::Protein() : Alphabet::Dna();
    int64_t n = 20 + static_cast<int64_t>(gen.rng().Below(400));
    int q = 2 + trial % 3;
    Sequence text = gen.Random(n, alphabet);
    DominationIndex index(text, q);
    std::map<std::string, int> oracle = OracleDomination(text, q);
    size_t oracle_dominated = 0;
    for (const auto& [key, pred] : oracle) {
      Symbol c = 255;
      bool dominated = index.IsDominated(
          reinterpret_cast<const Symbol*>(key.data()), &c);
      if (pred >= 0) {
        ++oracle_dominated;
        ASSERT_TRUE(dominated) << "trial " << trial;
        ASSERT_EQ(static_cast<int>(c), pred);
      } else {
        ASSERT_FALSE(dominated);
      }
    }
    EXPECT_EQ(index.num_dominated(), oracle_dominated);
    EXPECT_EQ(index.num_grams(), oracle.size());
  }
}

TEST(DominationIndex, UniqueOccurrenceIsDominated) {
  // In "GCTAGG", the gram "CTA" occurs once at position 1, preceded by G.
  Sequence text = Sequence::FromString("GCTAGG", Alphabet::Dna());
  DominationIndex index(text, 3);
  Sequence gram = Sequence::FromString("CTA", Alphabet::Dna());
  Symbol pred = 255;
  ASSERT_TRUE(index.IsDominated(gram.symbols().data(), &pred));
  EXPECT_EQ(pred, Alphabet::Dna().CodeOf('G'));
}

TEST(DominationIndex, FrontOfTextGramNeverDominated) {
  Sequence text = Sequence::FromString("CTACTA", Alphabet::Dna());
  DominationIndex index(text, 3);
  // "CTA" occurs at 0 and 3; the position-0 occurrence forbids domination
  // even though the other occurrence has a consistent predecessor.
  Sequence gram = Sequence::FromString("CTA", Alphabet::Dna());
  Symbol pred = 255;
  EXPECT_FALSE(index.IsDominated(gram.symbols().data(), &pred));
}

TEST(DominationIndex, MixedPredecessorsNotDominated) {
  Sequence text = Sequence::FromString("ACTAGCTAG", Alphabet::Dna());
  DominationIndex index(text, 3);
  // "CTA" at 1 (pred A) and 5 (pred G): not dominated.
  Sequence gram = Sequence::FromString("CTA", Alphabet::Dna());
  Symbol pred = 255;
  EXPECT_FALSE(index.IsDominated(gram.symbols().data(), &pred));
}

TEST(DominationIndex, TextShorterThanQ) {
  Sequence text = Sequence::FromString("AC", Alphabet::Dna());
  DominationIndex index(text, 5);
  EXPECT_EQ(index.num_grams(), 0u);
}

TEST(DominationIndex, SizeBytesGrowsWithDistinctGrams) {
  SequenceGenerator gen(72);
  Sequence small = gen.Random(100, Alphabet::Dna());
  Sequence large = gen.Random(10000, Alphabet::Dna());
  DominationIndex a(small, 6);
  DominationIndex b(large, 6);
  EXPECT_GT(b.num_grams(), a.num_grams());
  EXPECT_GT(b.SizeBytes(), a.SizeBytes());
}

}  // namespace
}  // namespace alae
