#include "src/align/traceback.h"

#include <gtest/gtest.h>

#include "src/baseline/smith_waterman.h"
#include "src/sim/generator.h"

namespace alae {
namespace {

TEST(Traceback, ExactMatchGivesAllMatchCigar) {
  SequenceGenerator gen(301);
  Sequence text = gen.Random(200, Alphabet::Dna());
  Sequence query = text.Substr(50, 30);
  AlignmentPath path = TracebackAlignment(text, query, 79, 29,
                                          ScoringScheme::Default());
  EXPECT_EQ(path.score, 30);
  EXPECT_EQ(path.cigar, "30M");
  EXPECT_EQ(path.text_begin, 50);
  EXPECT_EQ(path.query_begin, 0);
  EXPECT_EQ(path.matches, 30);
  EXPECT_EQ(path.mismatches, 0);
  EXPECT_DOUBLE_EQ(path.Identity(), 1.0);
}

TEST(Traceback, RecoversAnIndel) {
  // Query = text[100..130) + text[132..162): a 2-char deletion.
  SequenceGenerator gen(302);
  Sequence text = gen.Random(300, Alphabet::Dna());
  std::vector<Symbol> q;
  for (int64_t i = 100; i < 130; ++i) q.push_back(text[static_cast<size_t>(i)]);
  for (int64_t i = 132; i < 162; ++i) q.push_back(text[static_cast<size_t>(i)]);
  Sequence query(std::move(q), Alphabet::Dna());
  // Alignment ends at text 161, query 59; score 60 - (5 + 2*2) = 51.
  AlignmentPath path = TracebackAlignment(text, query, 161, 59,
                                          ScoringScheme::Default());
  EXPECT_EQ(path.score, 51);
  EXPECT_EQ(path.cigar, "30M2D30M");
  EXPECT_EQ(path.gap_columns, 2);
  EXPECT_EQ(path.text_begin, 100);
}

TEST(Traceback, ScoreMatchesSmithWatermanPerEndPair) {
  SequenceGenerator gen(303);
  for (int trial = 0; trial < 8; ++trial) {
    Sequence text = gen.Random(150, Alphabet::Dna());
    Sequence query = gen.HomologousQuery(text, 60, 0.8, 0.15, 0.05);
    ScoringScheme scheme = ScoringScheme::Fig9(trial % 4);
    ResultCollector hits = SmithWaterman::Run(text, query, scheme, 6);
    for (const AlignmentHit& hit : hits.Sorted()) {
      AlignmentPath path = TracebackAlignment(text, query, hit.text_end,
                                              hit.query_end, scheme);
      ASSERT_EQ(path.score, hit.score)
          << "trial " << trial << " end (" << hit.text_end << ","
          << hit.query_end << ")";
      ASSERT_EQ(path.text_end, hit.text_end);
      // Column counts must be consistent with the coordinates.
      EXPECT_EQ(path.matches + path.mismatches +
                    (path.text_end - path.text_begin + 1 -
                     (path.matches + path.mismatches)),
                path.text_end - path.text_begin + 1);
    }
  }
}

TEST(Traceback, CigarConsumesExactCoordinateSpans) {
  SequenceGenerator gen(304);
  Sequence text = gen.Random(200, Alphabet::Dna());
  Sequence query = gen.HomologousQuery(text, 80, 0.9, 0.1, 0.08);
  ResultCollector hits =
      SmithWaterman::Run(text, query, ScoringScheme::Default(), 10);
  for (const AlignmentHit& hit : hits.Sorted()) {
    AlignmentPath path = TracebackAlignment(text, query, hit.text_end,
                                            hit.query_end,
                                            ScoringScheme::Default());
    // Parse the CIGAR: M/D consume text, M/I consume query.
    int64_t t = 0, p = 0, run = 0;
    for (char c : path.cigar) {
      if (c >= '0' && c <= '9') {
        run = run * 10 + (c - '0');
        continue;
      }
      if (c == 'M') {
        t += run;
        p += run;
      } else if (c == 'D') {
        t += run;
      } else if (c == 'I') {
        p += run;
      }
      run = 0;
    }
    EXPECT_EQ(t, path.text_end - path.text_begin + 1);
    EXPECT_EQ(p, path.query_end - path.query_begin + 1);
  }
}

TEST(Traceback, NoPositiveAlignmentReturnsEmpty) {
  Sequence text = Sequence::FromString("AAAAAAA", Alphabet::Dna());
  Sequence query = Sequence::FromString("CCCC", Alphabet::Dna());
  AlignmentPath path = TracebackAlignment(text, query, 5, 2,
                                          ScoringScheme::Default());
  EXPECT_EQ(path.score, 0);
  EXPECT_TRUE(path.cigar.empty());
}

TEST(Traceback, OutOfRangeCoordinatesAreSafe) {
  Sequence text = Sequence::FromString("ACGT", Alphabet::Dna());
  Sequence query = Sequence::FromString("ACGT", Alphabet::Dna());
  EXPECT_EQ(TracebackAlignment(text, query, 10, 2, ScoringScheme::Default())
                .score,
            0);
  EXPECT_EQ(TracebackAlignment(text, query, -1, 2, ScoringScheme::Default())
                .score,
            0);
}

TEST(Traceback, PrettyRendersAlignedRows) {
  SequenceGenerator gen(305);
  Sequence text = gen.Random(100, Alphabet::Dna());
  Sequence query = text.Substr(20, 15);
  AlignmentPath path = TracebackAlignment(text, query, 34, 14,
                                          ScoringScheme::Default());
  std::string pretty = path.Pretty(text, query, 40);
  // Three rows: text, midline of pipes, query.
  EXPECT_NE(pretty.find("T " + text.Substr(20, 15).ToString()),
            std::string::npos);
  EXPECT_NE(pretty.find("Q " + query.ToString()), std::string::npos);
  EXPECT_NE(pretty.find("|||||||||||||||"), std::string::npos);
}

TEST(Traceback, WindowCapTruncatesVeryLongAlignments) {
  SequenceGenerator gen(306);
  Sequence text = gen.Random(600, Alphabet::Dna());
  Sequence query = text;  // perfect 600-char self alignment
  TracebackOptions options;
  options.max_window = 128;
  AlignmentPath path =
      TracebackAlignment(text, query, 599, 599, ScoringScheme::Default(),
                         options);
  EXPECT_EQ(path.score, 128);  // clipped at the window edge
  EXPECT_EQ(path.cigar, "128M");
}

}  // namespace
}  // namespace alae
