#include "src/util/serialize.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/baseline/bwt_sw.h"
#include "src/index/fm_index.h"
#include "src/sim/generator.h"

namespace alae {
namespace {

TEST(Serialize, PrimitivesRoundTrip) {
  std::stringstream ss;
  ASSERT_TRUE(PutU64(ss, 0xDEADBEEFCAFEULL));
  std::vector<int32_t> v = {1, -2, 3};
  ASSERT_TRUE(PutVec(ss, v));
  uint64_t u = 0;
  ASSERT_TRUE(GetU64(ss, &u));
  EXPECT_EQ(u, 0xDEADBEEFCAFEULL);
  std::vector<int32_t> w;
  ASSERT_TRUE(GetVec(ss, &w));
  EXPECT_EQ(w, v);
}

TEST(Serialize, TruncatedStreamFails) {
  std::stringstream ss;
  PutU64(ss, 42);
  uint64_t u;
  ASSERT_TRUE(GetU64(ss, &u));
  EXPECT_FALSE(GetU64(ss, &u));  // nothing left
}

TEST(FmIndexSerialize, RoundTripPreservesQueries) {
  SequenceGenerator gen(401);
  for (int trial = 0; trial < 4; ++trial) {
    const Alphabet& alphabet =
        trial % 2 ? Alphabet::Protein() : Alphabet::Dna();
    Sequence text = gen.Random(2'000 + trial * 500, alphabet);
    FmIndex original(text);
    std::stringstream ss;
    ASSERT_TRUE(original.Save(ss));
    FmIndex loaded;
    ASSERT_TRUE(loaded.Load(ss));
    EXPECT_EQ(loaded.text_size(), original.text_size());
    EXPECT_EQ(loaded.sigma(), original.sigma());
    // Same ranges and located positions for sampled patterns.
    for (int p = 0; p < 25; ++p) {
      int64_t len = 1 + static_cast<int64_t>(gen.rng().Below(9));
      int64_t at = static_cast<int64_t>(gen.rng().Below(
          static_cast<uint64_t>(static_cast<int64_t>(text.size()) - len)));
      Sequence pat = text.Substr(static_cast<size_t>(at),
                                 static_cast<size_t>(len));
      SaRange a = original.Find(pat.symbols());
      SaRange b = loaded.Find(pat.symbols());
      ASSERT_EQ(a, b);
      EXPECT_EQ(original.Locate(a), loaded.Locate(b));
    }
  }
}

TEST(FmIndexSerialize, LoadedIndexDrivesBwtSwIdentically) {
  SequenceGenerator gen(402);
  Sequence text = gen.Random(3'000, Alphabet::Dna());
  Sequence query = gen.HomologousQuery(text, 120, 0.7, 0.15, 0.03);
  FmIndex original(text.Reversed());
  std::stringstream ss;
  ASSERT_TRUE(original.Save(ss));
  FmIndex loaded;
  ASSERT_TRUE(loaded.Load(ss));
  BwtSw a(original, static_cast<int64_t>(text.size()));
  BwtSw b(loaded, static_cast<int64_t>(text.size()));
  ScoringScheme scheme = ScoringScheme::Default();
  EXPECT_EQ(a.Run(query, scheme, 15).Sorted(), b.Run(query, scheme, 15).Sorted());
}

TEST(FmIndexSerialize, WaveletModeRefusesToSave) {
  SequenceGenerator gen(403);
  Sequence text = gen.Random(500, Alphabet::Dna());
  FmIndexOptions options;
  options.use_wavelet = true;
  FmIndex fm(text, options);
  std::stringstream ss;
  EXPECT_FALSE(fm.Save(ss));
}

TEST(FmIndexSerialize, CorruptMagicRejected) {
  SequenceGenerator gen(404);
  Sequence text = gen.Random(500, Alphabet::Dna());
  FmIndex fm(text);
  std::stringstream ss;
  ASSERT_TRUE(fm.Save(ss));
  std::string payload = ss.str();
  payload[0] ^= 0x5A;
  std::stringstream bad(payload);
  FmIndex loaded;
  EXPECT_FALSE(loaded.Load(bad));
}

TEST(FmIndexSerialize, TruncatedPayloadRejected) {
  SequenceGenerator gen(405);
  Sequence text = gen.Random(500, Alphabet::Dna());
  FmIndex fm(text);
  std::stringstream ss;
  ASSERT_TRUE(fm.Save(ss));
  std::string payload = ss.str();
  std::stringstream bad(payload.substr(0, payload.size() / 2));
  FmIndex loaded;
  EXPECT_FALSE(loaded.Load(bad));
}

}  // namespace
}  // namespace alae
