#include "src/util/serialize.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/baseline/bwt_sw.h"
#include "src/index/fm_index.h"
#include "src/sim/generator.h"

namespace alae {
namespace {

TEST(Serialize, PrimitivesRoundTrip) {
  std::stringstream ss;
  ASSERT_TRUE(PutU64(ss, 0xDEADBEEFCAFEULL));
  std::vector<int32_t> v = {1, -2, 3};
  ASSERT_TRUE(PutVec(ss, v));
  uint64_t u = 0;
  ASSERT_TRUE(GetU64(ss, &u));
  EXPECT_EQ(u, 0xDEADBEEFCAFEULL);
  std::vector<int32_t> w;
  ASSERT_TRUE(GetVec(ss, &w));
  EXPECT_EQ(w, v);
}

TEST(Serialize, TruncatedStreamFails) {
  std::stringstream ss;
  PutU64(ss, 42);
  uint64_t u;
  ASSERT_TRUE(GetU64(ss, &u));
  EXPECT_FALSE(GetU64(ss, &u));  // nothing left
}

TEST(FmIndexSerialize, RoundTripPreservesQueries) {
  SequenceGenerator gen(401);
  for (int trial = 0; trial < 4; ++trial) {
    const Alphabet& alphabet =
        trial % 2 ? Alphabet::Protein() : Alphabet::Dna();
    Sequence text = gen.Random(2'000 + trial * 500, alphabet);
    FmIndex original(text);
    std::stringstream ss;
    ASSERT_TRUE(original.Save(ss));
    FmIndex loaded;
    ASSERT_TRUE(loaded.Load(ss));
    EXPECT_EQ(loaded.text_size(), original.text_size());
    EXPECT_EQ(loaded.sigma(), original.sigma());
    // Same ranges and located positions for sampled patterns.
    for (int p = 0; p < 25; ++p) {
      int64_t len = 1 + static_cast<int64_t>(gen.rng().Below(9));
      int64_t at = static_cast<int64_t>(gen.rng().Below(
          static_cast<uint64_t>(static_cast<int64_t>(text.size()) - len)));
      Sequence pat = text.Substr(static_cast<size_t>(at),
                                 static_cast<size_t>(len));
      SaRange a = original.Find(pat.symbols());
      SaRange b = loaded.Find(pat.symbols());
      ASSERT_EQ(a, b);
      EXPECT_EQ(original.Locate(a), loaded.Locate(b));
    }
  }
}

TEST(FmIndexSerialize, LoadedIndexDrivesBwtSwIdentically) {
  SequenceGenerator gen(402);
  Sequence text = gen.Random(3'000, Alphabet::Dna());
  Sequence query = gen.HomologousQuery(text, 120, 0.7, 0.15, 0.03);
  FmIndex original(text.Reversed());
  std::stringstream ss;
  ASSERT_TRUE(original.Save(ss));
  FmIndex loaded;
  ASSERT_TRUE(loaded.Load(ss));
  BwtSw a(original, static_cast<int64_t>(text.size()));
  BwtSw b(loaded, static_cast<int64_t>(text.size()));
  ScoringScheme scheme = ScoringScheme::Default();
  EXPECT_EQ(a.Run(query, scheme, 15).Sorted(), b.Run(query, scheme, 15).Sorted());
}

// Wavelet mode has an on-disk format too (the ShardedCorpus persists any
// index mode): round-trips must preserve queries for both alphabets.
TEST(FmIndexSerialize, WaveletModeRoundTrips) {
  SequenceGenerator gen(403);
  FmIndexOptions options;
  options.use_wavelet = true;
  for (int trial = 0; trial < 4; ++trial) {
    const Alphabet& alphabet =
        trial % 2 ? Alphabet::Protein() : Alphabet::Dna();
    Sequence text = gen.Random(1'500 + trial * 400, alphabet);
    FmIndex original(text, options);
    std::stringstream ss;
    ASSERT_TRUE(original.Save(ss));
    FmIndex loaded;
    ASSERT_TRUE(loaded.Load(ss));
    EXPECT_EQ(loaded.text_size(), original.text_size());
    EXPECT_EQ(loaded.sigma(), original.sigma());
    for (int p = 0; p < 25; ++p) {
      int64_t len = 1 + static_cast<int64_t>(gen.rng().Below(9));
      int64_t at = static_cast<int64_t>(gen.rng().Below(
          static_cast<uint64_t>(static_cast<int64_t>(text.size()) - len)));
      Sequence pat = text.Substr(static_cast<size_t>(at),
                                 static_cast<size_t>(len));
      SaRange a = original.Find(pat.symbols());
      SaRange b = loaded.Find(pat.symbols());
      ASSERT_EQ(a, b);
      EXPECT_EQ(original.Locate(a), loaded.Locate(b));
    }
  }
}

// A wavelet payload and a flat payload of the same text must both load and
// answer identically (the marker in the header disambiguates them).
TEST(FmIndexSerialize, WaveletAndFlatPayloadsAnswerIdentically) {
  SequenceGenerator gen(406);
  Sequence text = gen.Random(800, Alphabet::Dna());
  FmIndexOptions wave;
  wave.use_wavelet = true;
  FmIndex flat_fm(text);
  FmIndex wave_fm(text, wave);
  std::stringstream flat_ss, wave_ss;
  ASSERT_TRUE(flat_fm.Save(flat_ss));
  ASSERT_TRUE(wave_fm.Save(wave_ss));
  FmIndex flat_loaded, wave_loaded;
  ASSERT_TRUE(flat_loaded.Load(flat_ss));
  ASSERT_TRUE(wave_loaded.Load(wave_ss));
  for (int p = 0; p < 20; ++p) {
    int64_t at = static_cast<int64_t>(gen.rng().Below(text.size() - 6));
    Sequence pat = text.Substr(static_cast<size_t>(at), 6);
    SaRange a = flat_loaded.Find(pat.symbols());
    SaRange b = wave_loaded.Find(pat.symbols());
    ASSERT_EQ(a, b);
    EXPECT_EQ(flat_loaded.Locate(a), wave_loaded.Locate(b));
  }
}

// Every strict prefix of a wavelet payload must be rejected (truncation),
// and so must single-byte corruptions sprinkled through the node records —
// the loader re-derives the tree shape and cross-checks symbol totals, so
// no tampered payload may come back as a live index.
TEST(FmIndexSerialize, WaveletTruncationAndTamperingRejected) {
  SequenceGenerator gen(407);
  Sequence text = gen.Random(300, Alphabet::Dna());
  FmIndexOptions options;
  options.use_wavelet = true;
  FmIndex fm(text, options);
  std::stringstream ss;
  ASSERT_TRUE(fm.Save(ss));
  const std::string payload = ss.str();
  for (size_t cut = 0; cut < payload.size(); cut += 7) {
    std::stringstream bad(payload.substr(0, cut));
    FmIndex loaded;
    EXPECT_FALSE(loaded.Load(bad)) << "prefix of " << cut << " bytes loaded";
  }
  int rejected = 0, total = 0;
  for (size_t at = 0; at < payload.size(); at += 11) {
    std::string tampered = payload;
    tampered[at] ^= 0x2D;
    std::stringstream bad(tampered);
    FmIndex loaded;
    ++total;
    // Flips inside the sampled-SA *values* can be undetectable in
    // isolation (any in-range sample passes shape checks), so we require
    // the structural regions — everything the wavelet loader owns — to
    // reject, and count overall.
    if (!loaded.Load(bad)) ++rejected;
  }
  // The overwhelming majority of byte flips must be caught.
  EXPECT_GE(rejected * 10, total * 9)
      << rejected << "/" << total << " tampered payloads rejected";
}

TEST(FmIndexSerialize, CorruptMagicRejected) {
  SequenceGenerator gen(404);
  Sequence text = gen.Random(500, Alphabet::Dna());
  FmIndex fm(text);
  std::stringstream ss;
  ASSERT_TRUE(fm.Save(ss));
  std::string payload = ss.str();
  payload[0] ^= 0x5A;
  std::stringstream bad(payload);
  FmIndex loaded;
  EXPECT_FALSE(loaded.Load(bad));
}

TEST(FmIndexSerialize, TruncatedPayloadRejected) {
  SequenceGenerator gen(405);
  Sequence text = gen.Random(500, Alphabet::Dna());
  FmIndex fm(text);
  std::stringstream ss;
  ASSERT_TRUE(fm.Save(ss));
  std::string payload = ss.str();
  std::stringstream bad(payload.substr(0, payload.size() / 2));
  FmIndex loaded;
  EXPECT_FALSE(loaded.Load(bad));
}

}  // namespace
}  // namespace alae
