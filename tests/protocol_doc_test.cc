// docs/PROTOCOL.md is the normative wire spec, and its worked byte
// example must never drift from the implementation. This test parses the
// hexdump blocks out of the document (each preceded by a
// `<!-- wire-example: NAME -->` marker) and checks them both ways:
// encoding the example's stated field values with the real codec must
// reproduce the documented bytes exactly, and decoding the documented
// bytes must yield the stated values. CI runs this in the docs job.

#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/net/protocol.h"

#ifndef ALAE_SOURCE_DIR
#error "build must define ALAE_SOURCE_DIR (see CMakeLists.txt)"
#endif

namespace alae {
namespace net {
namespace {

// Pulls every `<!-- wire-example: NAME -->` + fenced hexdump block out of
// the spec. Hexdump lines look like `0000  31 00 ...`; the offset column
// is ignored, the byte columns are concatenated.
std::map<std::string, std::string> LoadWireExamples(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::map<std::string, std::string> examples;
  std::string line;
  std::string pending;  // marker seen, waiting for the fenced block
  bool in_block = false;
  while (std::getline(in, line)) {
    const std::string marker = "<!-- wire-example:";
    if (auto pos = line.find(marker); pos != std::string::npos) {
      auto end = line.find("-->", pos);
      pending = line.substr(pos + marker.size(),
                            end - pos - marker.size());
      // trim whitespace
      while (!pending.empty() && std::isspace(pending.front())) {
        pending.erase(pending.begin());
      }
      while (!pending.empty() && std::isspace(pending.back())) {
        pending.pop_back();
      }
      continue;
    }
    if (pending.empty()) continue;
    if (line.rfind("```", 0) == 0) {
      if (!in_block) {
        in_block = true;
        continue;
      }
      in_block = false;
      pending.clear();
      continue;
    }
    if (!in_block) continue;
    // `0000  31 00 00 00 ...` — skip the offset token, take hex pairs.
    std::istringstream tokens(line);
    std::string tok;
    bool first = true;
    while (tokens >> tok) {
      if (first) {
        first = false;
        continue;
      }
      EXPECT_EQ(tok.size(), 2u) << "bad hex token '" << tok << "' in "
                                << path;
      examples[pending].push_back(static_cast<char>(
          std::stoi(tok, nullptr, 16)));
    }
  }
  return examples;
}

std::string Hex(const std::string& bytes) {
  std::string out;
  char buf[4];
  for (unsigned char c : bytes) {
    std::snprintf(buf, sizeof(buf), "%02x ", c);
    out += buf;
  }
  return out;
}

class ProtocolDocTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    examples_ = new std::map<std::string, std::string>(LoadWireExamples(
        std::string(ALAE_SOURCE_DIR) + "/docs/PROTOCOL.md"));
  }
  static void TearDownTestSuite() {
    delete examples_;
    examples_ = nullptr;
  }
  static const std::string& Example(const std::string& name) {
    auto it = examples_->find(name);
    EXPECT_TRUE(it != examples_->end())
        << "docs/PROTOCOL.md has no <!-- wire-example: " << name
        << " --> block";
    static const std::string empty;
    return it != examples_->end() ? it->second : empty;
  }
  static std::map<std::string, std::string>* examples_;
};

std::map<std::string, std::string>* ProtocolDocTest::examples_ = nullptr;

// The example's stated field values, kept in one place.
WireRequest DocRequest() {
  WireRequest request;
  request.request_id = 7;
  request.backend = "alae";
  request.threshold = 4;
  request.max_hits = 100;
  request.query = "GCTAG";
  return request;
}

TEST_F(ProtocolDocTest, DocumentHasAllSixExamples) {
  for (const char* name :
       {"request", "hits", "status", "cancel", "stats-request", "stats"}) {
    EXPECT_FALSE(Example(name).empty()) << name;
  }
}

TEST_F(ProtocolDocTest, RequestBytesMatchCodec) {
  std::string encoded;
  AppendRequestFrame(DocRequest(), &encoded);
  EXPECT_EQ(Hex(encoded), Hex(Example("request")));
}

TEST_F(ProtocolDocTest, HitsBytesMatchCodec) {
  AlignmentHit hit;
  hit.text_end = 21;
  hit.query_end = 5;
  hit.text_start = 16;
  hit.score = 5;
  std::string encoded;
  AppendHitsFrame(7, &hit, 1, &encoded);
  EXPECT_EQ(Hex(encoded), Hex(Example("hits")));
}

TEST_F(ProtocolDocTest, StatusBytesMatchCodec) {
  WireStatus status;
  status.code = WireCode::kOk;
  status.stats.hits = 1;
  status.stats.engine_micros = 184;
  std::string encoded;
  AppendStatusFrame(7, status, &encoded);
  EXPECT_EQ(Hex(encoded), Hex(Example("status")));
}

TEST_F(ProtocolDocTest, CancelBytesMatchCodec) {
  std::string encoded;
  AppendCancelFrame(7, &encoded);
  EXPECT_EQ(Hex(encoded), Hex(Example("cancel")));
}

TEST_F(ProtocolDocTest, StatsRequestBytesMatchCodec) {
  std::string encoded;
  AppendStatsRequestFrame(9, &encoded);
  EXPECT_EQ(Hex(encoded), Hex(Example("stats-request")));
}

TEST_F(ProtocolDocTest, StatsBytesMatchCodec) {
  std::string encoded;
  AppendStatsFrame(9, "alae_up 1\n", &encoded);
  EXPECT_EQ(Hex(encoded), Hex(Example("stats")));
}

// The other direction: the documented conversation decodes through the
// real FrameReader + payload decoders into the stated values.
TEST_F(ProtocolDocTest, DocumentedConversationDecodes) {
  FrameReader reader;
  reader.Feed(Example("request"));
  reader.Feed(Example("hits"));
  reader.Feed(Example("status"));
  reader.Feed(Example("cancel"));

  Frame frame;
  api::Status error;

  ASSERT_EQ(reader.Next(&frame, &error), FrameReader::Result::kFrame);
  EXPECT_EQ(frame.header.type, kFrameRequest);
  EXPECT_EQ(frame.header.request_id, 7u);
  WireRequest request;
  ASSERT_TRUE(DecodeRequestPayload(frame.payload, &request).ok());
  const WireRequest want = DocRequest();
  EXPECT_EQ(request.backend, want.backend);
  EXPECT_EQ(request.alphabet, kAlphabetDna);
  EXPECT_EQ(request.threshold, want.threshold);
  EXPECT_EQ(request.max_hits, want.max_hits);
  EXPECT_EQ(request.deadline_ms, 0u);
  EXPECT_EQ(request.query, want.query);
  EXPECT_EQ(request.scheme.sa, 1);
  EXPECT_EQ(request.scheme.sb, -3);
  EXPECT_EQ(request.scheme.sg, -5);
  EXPECT_EQ(request.scheme.ss, -2);

  ASSERT_EQ(reader.Next(&frame, &error), FrameReader::Result::kFrame);
  EXPECT_EQ(frame.header.type, kFrameHits);
  std::vector<AlignmentHit> hits;
  ASSERT_TRUE(DecodeHitsPayload(frame.payload, &hits).ok());
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].text_end, 21);
  EXPECT_EQ(hits[0].query_end, 5);
  EXPECT_EQ(hits[0].text_start, 16);
  EXPECT_EQ(hits[0].score, 5);

  ASSERT_EQ(reader.Next(&frame, &error), FrameReader::Result::kFrame);
  EXPECT_EQ(frame.header.type, kFrameStatus);
  WireStatus status;
  ASSERT_TRUE(DecodeStatusPayload(frame.payload, &status).ok());
  EXPECT_EQ(status.code, WireCode::kOk);
  EXPECT_FALSE(status.retryable);
  EXPECT_EQ(status.stats.hits, 1u);
  EXPECT_EQ(status.stats.engine_micros, 184u);

  ASSERT_EQ(reader.Next(&frame, &error), FrameReader::Result::kFrame);
  EXPECT_EQ(frame.header.type, kFrameCancel);
  EXPECT_EQ(frame.header.request_id, 7u);
  EXPECT_TRUE(frame.payload.empty());

  reader.Feed(Example("stats-request"));
  reader.Feed(Example("stats"));

  ASSERT_EQ(reader.Next(&frame, &error), FrameReader::Result::kFrame);
  EXPECT_EQ(frame.header.type, kFrameStatsRequest);
  EXPECT_EQ(frame.header.request_id, 9u);
  EXPECT_TRUE(frame.payload.empty());

  ASSERT_EQ(reader.Next(&frame, &error), FrameReader::Result::kFrame);
  EXPECT_EQ(frame.header.type, kFrameStats);
  EXPECT_EQ(frame.header.request_id, 9u);
  std::string text;
  ASSERT_TRUE(DecodeStatsPayload(frame.payload, &text).ok());
  EXPECT_EQ(text, "alae_up 1\n");

  EXPECT_EQ(reader.Next(&frame, &error), FrameReader::Result::kNeedMore);
}

// Constants the prose states numerically must match the header.
TEST_F(ProtocolDocTest, DocumentedConstantsMatchHeader) {
  EXPECT_EQ(kHeaderSize, 12u);
  EXPECT_EQ(kProtocolVersion, 1);
  EXPECT_EQ(kMaxPayload, 1048576u);
  EXPECT_EQ(kMaxHitsPerFrame, 37449u);
  EXPECT_EQ(kWireHitSize, 28u);
}

}  // namespace
}  // namespace net
}  // namespace alae
