#include "src/index/lcp.h"

#include <gtest/gtest.h>

#include "src/sim/generator.h"

namespace alae {
namespace {

size_t NaiveLcp(const Sequence& s, size_t i, size_t j) {
  size_t k = 0;
  while (i + k < s.size() && j + k < s.size() && s[i + k] == s[j + k]) ++k;
  return k;
}

TEST(LcpIndex, MatchesNaiveRandom) {
  SequenceGenerator gen(41);
  for (int trial = 0; trial < 10; ++trial) {
    const Alphabet& alphabet =
        trial % 2 ? Alphabet::Protein() : Alphabet::Dna();
    int64_t n = 5 + static_cast<int64_t>(gen.rng().Below(300));
    Sequence s = gen.Random(n, alphabet);
    LcpIndex lcp(s);
    for (int pair = 0; pair < 200; ++pair) {
      size_t i = static_cast<size_t>(gen.rng().Below(static_cast<uint64_t>(n)));
      size_t j = static_cast<size_t>(gen.rng().Below(static_cast<uint64_t>(n)));
      ASSERT_EQ(lcp.Lcp(i, j), NaiveLcp(s, i, j))
          << "trial " << trial << " i=" << i << " j=" << j;
    }
  }
}

TEST(LcpIndex, RepetitiveText) {
  Sequence s = Sequence::FromString("ACACACACAC", Alphabet::Dna());
  LcpIndex lcp(s);
  EXPECT_EQ(lcp.Lcp(0, 2), 8u);
  EXPECT_EQ(lcp.Lcp(0, 1), 0u);
  EXPECT_EQ(lcp.Lcp(1, 3), 7u);
  EXPECT_EQ(lcp.Lcp(4, 4), 6u);  // self: remaining length
}

TEST(LcpIndex, AllSameCharacter) {
  Sequence s = Sequence::FromString(std::string(64, 'A'), Alphabet::Dna());
  LcpIndex lcp(s);
  EXPECT_EQ(lcp.Lcp(0, 32), 32u);
  EXPECT_EQ(lcp.Lcp(10, 20), 44u);
}

TEST(LcpIndex, SingleCharacterSequence) {
  Sequence s = Sequence::FromString("G", Alphabet::Dna());
  LcpIndex lcp(s);
  EXPECT_EQ(lcp.Lcp(0, 0), 1u);
}

}  // namespace
}  // namespace alae
