// End-to-end flows across modules: FASTA -> index -> align -> E-values,
// multi-query batches, and cross-engine agreement at realistic (scaled)
// workload sizes.

#include <gtest/gtest.h>

#include "src/baseline/blast/blast.h"
#include "src/baseline/bwt_sw.h"
#include "src/baseline/smith_waterman.h"
#include "src/core/alae.h"
#include "src/io/fasta.h"
#include "src/sim/workload.h"
#include "src/stats/karlin.h"

namespace alae {
namespace {

TEST(Integration, FastaToAlignmentPipeline) {
  // Two records concatenated into one text (the paper's §2.2 reduction),
  // then searched with ALAE using an E-value-derived threshold.
  WorkloadSpec spec;
  spec.text_length = 3000;
  spec.query_length = 150;
  spec.num_queries = 1;
  Workload w = BuildWorkload(spec);

  std::vector<FastaRecord> records = {
      {"chr1", w.text.Substr(0, 1500).ToString()},
      {"chr2", w.text.Substr(1500, 1500).ToString()}};
  std::string payload = FastaWriter::ToString(records);

  std::vector<FastaRecord> parsed;
  std::string error;
  ASSERT_TRUE(FastaReader::ParseString(payload, &parsed, &error)) << error;
  Sequence text = FastaReader::ToText(parsed, Alphabet::Dna());
  ASSERT_EQ(text, w.text);

  ScoringScheme scheme = ScoringScheme::Default();
  int32_t h = KarlinStats::EValueToThreshold(
      10.0, static_cast<int64_t>(w.queries[0].size()),
      static_cast<int64_t>(text.size()), scheme, 4);
  AlaeIndex index(text);
  Alae alae(index);
  ResultCollector got = alae.Run(w.queries[0], scheme, h);
  ResultCollector truth = SmithWaterman::Run(text, w.queries[0], scheme, h);
  EXPECT_EQ(truth.Sorted(), got.Sorted());
}

TEST(Integration, MultiQueryBatchSharesOneIndex) {
  WorkloadSpec spec;
  spec.text_length = 8000;
  spec.query_length = 200;
  spec.num_queries = 5;
  spec.divergence = 0.10;  // strong homologs so H=25 yields hits
  Workload w = BuildWorkload(spec);
  AlaeIndex index(w.text);
  Alae alae(index);
  ScoringScheme scheme = ScoringScheme::Default();
  size_t total = 0;
  for (const Sequence& q : w.queries) {
    ResultCollector got = alae.Run(q, scheme, 25);
    ResultCollector truth = SmithWaterman::Run(w.text, q, scheme, 25);
    ASSERT_EQ(truth.Sorted(), got.Sorted());
    total += got.size();
  }
  EXPECT_GT(total, 0u) << "workload should produce hits at H=25";
}

TEST(Integration, ThreeEnginesOneWorkload) {
  WorkloadSpec spec;
  spec.text_length = 6000;
  spec.query_length = 250;
  spec.num_queries = 1;
  spec.divergence = 0.25;
  Workload w = BuildWorkload(spec);
  ScoringScheme scheme = ScoringScheme::Default();
  int32_t h = 28;

  AlaeIndex index(w.text);
  ResultCollector alae_hits = Alae(index).Run(w.queries[0], scheme, h);

  FmIndex rev(w.text.Reversed());
  BwtSw bwtsw(rev, static_cast<int64_t>(w.text.size()));
  ResultCollector bw_hits = bwtsw.Run(w.queries[0], scheme, h);

  ResultCollector blast_hits = Blast::Run(w.text, w.queries[0], scheme, h);

  // Exact engines agree; the heuristic is a subset.
  EXPECT_EQ(alae_hits.Sorted(), bw_hits.Sorted());
  EXPECT_LE(blast_hits.size(), alae_hits.size());
}

TEST(Integration, WaveletIndexGivesSameAnswers) {
  WorkloadSpec spec;
  spec.text_length = 4000;
  spec.query_length = 150;
  spec.num_queries = 1;
  Workload w = BuildWorkload(spec);
  ScoringScheme scheme = ScoringScheme::Default();
  FmIndexOptions wavelet;
  wavelet.use_wavelet = true;
  AlaeIndex flat_index(w.text);
  AlaeIndex wave_index(w.text, wavelet);
  EXPECT_EQ(Alae(flat_index).Run(w.queries[0], scheme, 22).Sorted(),
            Alae(wave_index).Run(w.queries[0], scheme, 22).Sorted());
}

TEST(Integration, ProteinWorkloadEndToEnd) {
  WorkloadSpec spec;
  spec.alphabet = AlphabetKind::kProtein;
  spec.text_length = 4000;
  spec.query_length = 120;
  spec.num_queries = 2;
  spec.divergence = 0.4;
  Workload w = BuildWorkload(spec);
  ScoringScheme scheme{1, -3, -11, -1};  // the paper's protein scheme (§7.5)
  AlaeIndex index(w.text);
  Alae alae(index);
  for (const Sequence& q : w.queries) {
    ResultCollector truth = SmithWaterman::Run(w.text, q, scheme, 15);
    EXPECT_EQ(truth.Sorted(), alae.Run(q, scheme, 15).Sorted());
  }
}

}  // namespace
}  // namespace alae
