#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/service/hit_merger.h"
#include "src/service/service.h"
#include "src/sim/generator.h"
#include "src/sim/workload.h"
#include "src/util/cancel.h"

namespace alae {
namespace service {
namespace {

using api::SearchRequest;
using api::SearchResponse;

// ---------------------------------------------------------------------------
// StreamMerger units, on a synthetic two-slice view (the merger only reads
// geometry and tombstones; no indexes needed).
// ---------------------------------------------------------------------------

CorpusView TwoSliceView() {
  CorpusView view;
  view.text_size = 20;
  ShardSlice a;
  a.text_start = 0;
  a.owned_begin = 0;
  a.owned_end = 10;
  ShardSlice b;
  b.text_start = 5;
  b.owned_begin = 10;
  b.owned_end = 20;
  view.slices.push_back(a);
  view.slices.push_back(b);
  return view;
}

AlignmentHit Hit(int64_t text_end, int64_t query_end, int32_t score) {
  AlignmentHit hit;
  hit.text_end = text_end;
  hit.query_end = query_end;
  hit.score = score;
  return hit;
}

TEST(StreamMerger, BuffersHigherRanksUntilLowerRanksClose) {
  const CorpusView view = TwoSliceView();
  std::vector<AlignmentHit> seen;
  StreamMerger merger(
      view, /*guard=*/1, /*max_hits=*/0,
      [&seen](const AlignmentHit& hit) {
        seen.push_back(hit);
        return true;
      },
      /*cap_token=*/nullptr);

  // Slice 1 (higher rank) produces first: its hits must be buffered, not
  // emitted — slice 0 may still produce smaller text_ends.
  EXPECT_TRUE(merger.Publish(1, Hit(7, 3, 9)));    // global end 12
  EXPECT_TRUE(merger.Publish(1, Hit(10, 5, 8)));   // global end 15
  EXPECT_TRUE(seen.empty());

  // Slice 0 streams straight through.
  EXPECT_TRUE(merger.Publish(0, Hit(2, 1, 5)));
  EXPECT_TRUE(merger.Publish(0, Hit(8, 2, 6)));
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[1].text_end, 8);

  // Closing slice 0 flushes slice 1's backlog in order; later slice-1
  // publishes then stream live.
  merger.Close(0, api::EngineStats());
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[2].text_end, 12);
  EXPECT_EQ(seen[3].text_end, 15);
  EXPECT_TRUE(merger.Publish(1, Hit(14, 6, 7)));  // global end 19
  ASSERT_EQ(seen.size(), 5u);
  EXPECT_EQ(seen[4].text_end, 19);
  merger.Close(1, api::EngineStats());

  // Emitted mirrors the sink stream and is globally sorted.
  EXPECT_EQ(merger.emitted(), seen);
  for (size_t i = 1; i < seen.size(); ++i) {
    EXPECT_LT(seen[i - 1].text_end, seen[i].text_end);
  }
  EXPECT_FALSE(merger.cap_satisfied());
  EXPECT_EQ(merger.TakeStats().hits_emitted, 5u);
}

TEST(StreamMerger, OwnershipAndTombstoneFiltersApply) {
  CorpusView view = TwoSliceView();
  TombstoneSpan dead;
  dead.begin = 3;
  dead.end = 4;
  view.tombstones.push_back(dead);

  std::vector<AlignmentHit> seen;
  StreamMerger merger(
      view, /*guard=*/1, 0,
      [&seen](const AlignmentHit& hit) {
        seen.push_back(hit);
        return true;
      },
      nullptr);

  // Slice 1 reporting an end it does not own (global end 5+4=9 < 10):
  // dropped, slice 0 owns it.
  EXPECT_TRUE(merger.Publish(1, Hit(4, 1, 5)));
  // Slice 0's hit ending on the tombstoned position: suppressed.
  EXPECT_TRUE(merger.Publish(0, Hit(3, 1, 5)));
  // A clean slice-0 hit passes.
  EXPECT_TRUE(merger.Publish(0, Hit(6, 2, 7)));
  merger.Close(0, api::EngineStats());
  merger.Close(1, api::EngineStats());

  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].text_end, 6);
  EXPECT_EQ(merger.tombstone_filtered(), 1u);
}

TEST(StreamMerger, CapFiresTokenAndRefusesFurtherHits) {
  const CorpusView view = TwoSliceView();
  CancelToken cap;
  size_t delivered = 0;
  StreamMerger merger(
      view, 1, /*max_hits=*/2,
      [&delivered](const AlignmentHit&) {
        ++delivered;
        return true;
      },
      &cap);

  EXPECT_TRUE(merger.Publish(0, Hit(1, 1, 5)));
  EXPECT_FALSE(cap.Expired());
  // The second hit satisfies the cap: Publish reports "stop" and the
  // engines' token fires.
  EXPECT_FALSE(merger.Publish(0, Hit(2, 2, 5)));
  EXPECT_TRUE(cap.Expired());
  EXPECT_TRUE(merger.cap_satisfied());
  EXPECT_FALSE(merger.sink_stopped());
  // Anything after the cap is refused and not delivered.
  EXPECT_FALSE(merger.Publish(0, Hit(3, 3, 5)));
  merger.Close(0, api::EngineStats());
  merger.Close(1, api::EngineStats());
  EXPECT_EQ(delivered, 2u);
  EXPECT_TRUE(merger.TakeStats().truncated);
}

TEST(StreamMerger, SinkStopIsDistinguishedFromCap) {
  const CorpusView view = TwoSliceView();
  CancelToken cap;
  StreamMerger merger(view, 1, 0,
                      [](const AlignmentHit&) { return false; }, &cap);
  EXPECT_FALSE(merger.Publish(0, Hit(1, 1, 5)));
  EXPECT_TRUE(merger.cap_satisfied());
  EXPECT_TRUE(merger.sink_stopped());
  EXPECT_TRUE(cap.Expired());
}

// ---------------------------------------------------------------------------
// QueryScheduler::SearchStream against the buffered path.
// ---------------------------------------------------------------------------

std::unique_ptr<ShardedCorpus> MustBuild(Sequence text,
                                         ShardedCorpusOptions options) {
  auto corpus = ShardedCorpus::Build(std::move(text), options);
  EXPECT_TRUE(corpus.ok()) << corpus.status().ToString();
  return std::move(corpus).value();
}

Workload SmallWorkload(uint64_t seed) {
  WorkloadSpec spec;
  spec.text_length = 3'000;
  spec.query_length = 48;
  spec.num_queries = 2;
  spec.homolog_fraction = 1.0;  // every query has a planted alignment
  spec.divergence = 0.12;
  spec.seed = seed;
  return BuildWorkload(spec);
}

std::vector<AlignmentHit> Streamed(QueryScheduler& scheduler,
                                   const std::string& backend,
                                   const SearchRequest& request,
                                   api::EngineStats* stats = nullptr) {
  std::vector<AlignmentHit> hits;
  api::StatusOr<api::EngineStats> result = scheduler.SearchStream(
      backend, request, [&hits](const AlignmentHit& hit) {
        hits.push_back(hit);
        return true;
      });
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (result.ok()) {
    EXPECT_EQ(result->hits_emitted, hits.size());
    if (stats != nullptr) *stats = *result;
  }
  return hits;
}

TEST(SearchStream, MatchesBufferedSearchForAllBackends) {
  const Workload w = SmallWorkload(21);
  ShardedCorpusOptions options;
  options.shard_size = 900;  // BASIC-compatible shards, several slices
  options.overlap = 200;
  std::unique_ptr<ShardedCorpus> corpus = MustBuild(w.text, options);

  // Caches off: every answer is a genuine stream vs a genuine merge.
  QueryScheduler scheduler(*corpus, {.threads = 2, .cache_capacity = 0});
  for (const std::string& backend : api::AlignerRegistry::BuiltinNames()) {
    for (const Sequence& query : w.queries) {
      SearchRequest request;
      request.query = query;
      request.threshold = 18;
      api::StatusOr<SearchResponse> buffered =
          scheduler.Search(backend, request);
      ASSERT_TRUE(buffered.ok()) << backend << ": "
                                 << buffered.status().ToString();
      EXPECT_EQ(Streamed(scheduler, backend, request), buffered->hits)
          << backend;
    }
  }
}

TEST(SearchStream, MaxHitsPrefixIsBitExact) {
  const Workload w = SmallWorkload(22);
  ShardedCorpusOptions options;
  options.shard_size = 900;
  options.overlap = 200;
  std::unique_ptr<ShardedCorpus> corpus = MustBuild(w.text, options);
  QueryScheduler scheduler(*corpus, {.threads = 2, .cache_capacity = 0});

  SearchRequest full;
  full.query = w.queries[0];
  full.threshold = 16;
  api::StatusOr<SearchResponse> all = scheduler.Search("alae", full);
  ASSERT_TRUE(all.ok());
  ASSERT_GE(all->hits.size(), 3u) << "workload produced too few hits";

  for (uint64_t cap : {1u, 2u, static_cast<unsigned>(all->hits.size() - 1)}) {
    SearchRequest capped = full;
    capped.max_hits = cap;
    api::EngineStats stats;
    const std::vector<AlignmentHit> prefix =
        Streamed(scheduler, "alae", capped, &stats);
    ASSERT_EQ(prefix.size(), cap);
    EXPECT_TRUE(stats.truncated);
    for (size_t i = 0; i < cap; ++i) {
      EXPECT_EQ(prefix[i], all->hits[i]) << "cap " << cap << " position " << i;
    }
  }
}

// The point of streaming max_hits: remaining shard work is short-circuited,
// observable as a per-shard work-counter drop against the uncapped run.
TEST(SearchStream, MaxHitsShortCircuitsShardWork) {
  WorkloadSpec spec;
  spec.text_length = 24'000;
  spec.query_length = 48;
  spec.num_queries = 1;
  spec.homolog_fraction = 1.0;
  spec.divergence = 0.10;  // strong planted alignments: hits come early
  spec.seed = 5;
  const Workload w = BuildWorkload(spec);

  ShardedCorpusOptions options;
  options.shard_size = 4'000;
  options.overlap = 200;
  std::unique_ptr<ShardedCorpus> corpus = MustBuild(w.text, options);
  // One thread: the capped run cannot hide uncancelled work in slices that
  // raced ahead of the cap.
  QueryScheduler scheduler(*corpus, {.threads = 1, .cache_capacity = 0});

  SearchRequest request;
  request.query = w.queries[0];
  request.threshold = 16;

  api::EngineStats full_stats;
  const std::vector<AlignmentHit> full =
      Streamed(scheduler, "sw", request, &full_stats);
  ASSERT_GE(full.size(), 2u);

  SearchRequest capped = request;
  capped.max_hits = 1;
  api::EngineStats capped_stats;
  const std::vector<AlignmentHit> prefix =
      Streamed(scheduler, "sw", capped, &capped_stats);
  ASSERT_EQ(prefix.size(), 1u);
  EXPECT_EQ(prefix[0], full[0]);

  // The capped run must have computed strictly fewer DP cells: slices
  // beyond the cap fast-failed or aborted at a cancellation poll.
  EXPECT_LT(capped_stats.counters.Calculated(),
            full_stats.counters.Calculated())
      << "short-circuit saved no work";
}

TEST(SearchStream, SharesTheResponseCacheBothWays) {
  const Workload w = SmallWorkload(23);
  ShardedCorpusOptions options;
  options.shard_size = 1'000;
  options.overlap = 200;
  std::unique_ptr<ShardedCorpus> corpus = MustBuild(w.text, options);
  QueryScheduler scheduler(*corpus, {.threads = 2, .cache_capacity = 16});

  // Stream first: the completed stream populates the cache...
  SearchRequest request;
  request.query = w.queries[0];
  request.threshold = 18;
  api::EngineStats first;
  const std::vector<AlignmentHit> streamed =
      Streamed(scheduler, "alae", request, &first);
  EXPECT_EQ(first.cache_hits, 0u);

  // ...so the buffered Search answers from cache, bit-exactly.
  api::StatusOr<SearchResponse> buffered = scheduler.Search("alae", request);
  ASSERT_TRUE(buffered.ok());
  EXPECT_EQ(buffered->stats.cache_hits, 1u);
  EXPECT_EQ(buffered->hits, streamed);

  // And the reverse: a buffered answer replays into a later stream.
  SearchRequest other;
  other.query = w.queries[1];
  other.threshold = 18;
  api::StatusOr<SearchResponse> computed = scheduler.Search("alae", other);
  ASSERT_TRUE(computed.ok());
  api::EngineStats replay;
  EXPECT_EQ(Streamed(scheduler, "alae", other, &replay), computed->hits);
  EXPECT_EQ(replay.cache_hits, 1u);
}

TEST(SearchStream, CancelAndDeadlineSurface) {
  const Workload w = SmallWorkload(24);
  ShardedCorpusOptions options;
  options.shard_size = 1'000;
  options.overlap = 200;
  std::unique_ptr<ShardedCorpus> corpus = MustBuild(w.text, options);
  QueryScheduler scheduler(*corpus, {.threads = 2, .cache_capacity = 0});

  // Pre-fired token: refused before any engine runs.
  CancelToken cancelled;
  cancelled.Cancel();
  SearchRequest request;
  request.query = w.queries[0];
  request.threshold = 18;
  request.cancel = &cancelled;
  api::StatusOr<api::EngineStats> result = scheduler.SearchStream(
      "alae", request, [](const AlignmentHit&) { return true; });
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), api::StatusCode::kCancelled);

  // Expired deadline with allow_partial: an Ok empty partial stream.
  CancelToken expired;
  expired.SetDeadlineAfter(std::chrono::nanoseconds(1));
  request.cancel = &expired;
  request.allow_partial = true;
  size_t delivered = 0;
  result = scheduler.SearchStream("alae", request, [&](const AlignmentHit&) {
    ++delivered;
    return true;
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->truncated_by_deadline);
  EXPECT_EQ(delivered, 0u);
}

}  // namespace
}  // namespace service
}  // namespace alae
