// Observability tests: sharded-atomic instruments (exact totals under
// concurrent hammering), the Prometheus-style text exposition (golden),
// the nearest-rank SampleSummary shared by drivers and benches, span-tree
// tracing, deterministic sampling, the slow-query log — and the scheduler
// integration contract: a traced request's span tree must account for at
// least 90% of its end-to-end wall time, and a private registry must see
// the scheduler's counters (or stay empty with metrics disabled).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/service/service.h"
#include "src/sim/workload.h"
#include "src/util/timer.h"

namespace alae {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsRegistry;
using obs::SampleSummary;
using obs::Trace;
using obs::TraceSpan;
using obs::Tracer;
using obs::TracerOptions;

// ---------------------------------------------------------------- counters

TEST(ObsCounter, ConcurrentAddsSumExactly) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(ObsCounter, AddWithWeight) {
  Counter counter;
  counter.Add(3);
  counter.Add(0);
  counter.Add(39);
  EXPECT_EQ(counter.Value(), 42u);
}

TEST(ObsGauge, SetAndAdd) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0);
  gauge.Set(7);
  EXPECT_EQ(gauge.Value(), 7);
  gauge.Add(-10);
  EXPECT_EQ(gauge.Value(), -3);
}

// -------------------------------------------------------------- histograms

TEST(ObsHistogram, ConcurrentObserveExactTotals) {
  Histogram histogram({1.0});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (int i = 0; i < kPerThread; ++i) histogram.Observe(0.5);
    });
  }
  for (std::thread& t : threads) t.join();
  Histogram::Snapshot snap = histogram.Snap();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  ASSERT_EQ(snap.counts.size(), 2u);  // one bound plus +Inf
  EXPECT_EQ(snap.counts[0], snap.count);
  EXPECT_EQ(snap.counts[1], 0u);
  // 0.5 is exactly representable, so the CAS-summed total is exact too.
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 * static_cast<double>(snap.count));
}

TEST(ObsHistogram, BucketingAndPercentiles) {
  Histogram histogram({1.0, 2.0, 4.0});
  histogram.Observe(0.5);   // <= 1
  histogram.Observe(1.5);   // <= 2
  histogram.Observe(3.0);   // <= 4
  histogram.Observe(10.0);  // +Inf
  Histogram::Snapshot snap = histogram.Snap();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.Percentile(0.25), 1.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(0.50), 2.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(0.75), 4.0);
  // The last observation sits in the overflow bucket; nearest-rank
  // reports the largest finite bound rather than inventing a value.
  EXPECT_DOUBLE_EQ(snap.Percentile(1.0), 4.0);
}

TEST(ObsHistogram, EmptySnapshotIsSane) {
  Histogram histogram({1.0, 2.0});
  Histogram::Snapshot snap = histogram.Snap();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.0);
}

// ---------------------------------------------------------------- registry

TEST(ObsRegistry, InternedPointersAreStable) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("alae_test_total");
  Counter* b = registry.GetCounter("alae_test_total");
  EXPECT_EQ(a, b);
  Histogram* h1 = registry.GetHistogram("alae_test_seconds", {1.0});
  // Bounds are fixed on first registration; different bounds on a second
  // Get return the existing instrument unchanged.
  Histogram* h2 = registry.GetHistogram("alae_test_seconds", {5.0, 9.0});
  EXPECT_EQ(h1, h2);
  h1->Observe(0.5);
  EXPECT_EQ(h2->Snap().counts.size(), 2u);
}

TEST(ObsRegistry, ExposeGolden) {
  MetricsRegistry registry;
  registry.GetCounter("alae_test_events_total")->Add(3);
  registry.GetGauge("alae_test_depth")->Set(-2);
  Histogram* histogram =
      registry.GetHistogram("alae_test_seconds", {0.001, 0.01});
  histogram->Observe(0.0005);
  histogram->Observe(0.005);
  histogram->Observe(5.0);
  EXPECT_EQ(registry.Expose(),
            "alae_test_depth -2\n"
            "alae_test_events_total 3\n"
            "alae_test_seconds_bucket{le=\"0.001\"} 1\n"
            "alae_test_seconds_bucket{le=\"0.01\"} 2\n"
            "alae_test_seconds_bucket{le=\"+Inf\"} 3\n"
            "alae_test_seconds_sum 5.0055\n"
            "alae_test_seconds_count 3\n");
}

// ----------------------------------------------------------- sample summary

TEST(ObsSampleSummary, NearestRankPercentiles) {
  SampleSummary summary;
  for (int i = 100; i >= 1; --i) summary.Add(i);  // unsorted insert order
  EXPECT_EQ(summary.count(), 100u);
  EXPECT_DOUBLE_EQ(summary.Percentile(0.50), 50.0);
  EXPECT_DOUBLE_EQ(summary.Percentile(0.90), 90.0);
  EXPECT_DOUBLE_EQ(summary.Percentile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(summary.Percentile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(summary.mean(), 50.5);
}

TEST(ObsSampleSummary, RenderHistogramShape) {
  SampleSummary summary;
  for (int i = 1; i <= 100; ++i) summary.Add(i);
  const std::string rendered = summary.RenderHistogram({10, 50}, "us");
  EXPECT_NE(rendered.find("<= 10us"), std::string::npos);
  EXPECT_NE(rendered.find("<= 50us"), std::string::npos);
  EXPECT_NE(rendered.find("> 50us"), std::string::npos);
  EXPECT_NE(rendered.find('|'), std::string::npos);

  SampleSummary empty;
  EXPECT_EQ(empty.RenderHistogram({10}, "us"), "");
}

// ------------------------------------------------------------------ tracing

TEST(ObsTrace, SpanNestingAndTiming) {
  Trace trace;
  const int root = trace.BeginSpan("root");
  const int child = trace.BeginSpan("child", root);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  trace.EndSpan(child);
  const int sibling = trace.BeginSpan("sibling", root);
  trace.EndSpan(sibling);
  trace.EndSpan(root);

  const std::vector<TraceSpan> spans = trace.Spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[root].name, "root");
  EXPECT_EQ(spans[root].parent, -1);
  EXPECT_EQ(spans[child].parent, root);
  EXPECT_EQ(spans[sibling].parent, root);
  EXPECT_GE(spans[child].end_ns - spans[child].start_ns, 1'000'000);
  // The root brackets its children, so wall == root duration.
  EXPECT_GE(spans[root].end_ns, spans[sibling].end_ns);
  EXPECT_EQ(trace.WallNanos(), spans[root].end_ns - spans[root].start_ns);

  const std::string rendered = trace.Render();
  EXPECT_NE(rendered.find("root:"), std::string::npos);
  EXPECT_NE(rendered.find("  child:"), std::string::npos);
  EXPECT_NE(rendered.find("  sibling:"), std::string::npos);
}

TEST(ObsTrace, AddSpanRecordsForeignIntervals) {
  Trace trace;
  const int id = trace.AddSpan("queue", 1'000, 4'500);
  const std::vector<TraceSpan> spans = trace.Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(id, 0);
  EXPECT_EQ(spans[0].start_ns, 1'000);
  EXPECT_EQ(spans[0].end_ns, 4'500);
  EXPECT_EQ(trace.WallNanos(), 3'500);
}

TEST(ObsTracer, SamplingIsDeterministicInSeed) {
  TracerOptions options;
  options.sample_rate = 0.5;
  options.seed = 12345;
  Tracer a(options);
  Tracer b(options);
  constexpr int kDraws = 256;
  int sampled = 0;
  for (int i = 0; i < kDraws; ++i) {
    std::unique_ptr<Trace> ta = a.MaybeSample();
    std::unique_ptr<Trace> tb = b.MaybeSample();
    EXPECT_EQ(ta != nullptr, tb != nullptr) << "draw " << i;
    if (ta != nullptr) ++sampled;
  }
  // A rate-0.5 sequence that samples everything (or nothing) over 256
  // draws means the RNG is broken, not unlucky (p ~ 2^-256).
  EXPECT_GT(sampled, 0);
  EXPECT_LT(sampled, kDraws);
  EXPECT_EQ(a.sampled(), static_cast<uint64_t>(sampled));
}

TEST(ObsTracer, RateEndpoints) {
  TracerOptions always;
  always.sample_rate = 1.0;
  Tracer on(always);
  for (int i = 0; i < 32; ++i) EXPECT_NE(on.MaybeSample(), nullptr);

  TracerOptions never;  // default rate 0.0
  Tracer off(never);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(off.MaybeSample(), nullptr);
  EXPECT_EQ(off.sampled(), 0u);
  off.Finish(nullptr);  // null-safe
}

TEST(ObsTracer, SlowQueryLogThresholdAndRing) {
  std::vector<std::string> sink_calls;
  TracerOptions options;
  options.sample_rate = 1.0;
  options.slow_query_ns = 1'000'000;  // 1ms
  options.keep_slow = 2;
  options.slow_sink = [&sink_calls](const std::string& rendered) {
    sink_calls.push_back(rendered);
  };
  Tracer tracer(options);

  // Below threshold: counted as sampled, not as slow.
  std::unique_ptr<Trace> fast = tracer.MaybeSample();
  ASSERT_NE(fast, nullptr);
  fast->AddSpan("fast", 0, 100);
  tracer.Finish(std::move(fast));
  EXPECT_EQ(tracer.slow(), 0u);
  EXPECT_TRUE(sink_calls.empty());

  // Three slow traces through a keep_slow=2 ring: all hit the sink, the
  // ring retains only the most recent two.
  for (int i = 0; i < 3; ++i) {
    std::unique_ptr<Trace> slow = tracer.MaybeSample();
    ASSERT_NE(slow, nullptr);
    slow->AddSpan("work" + std::to_string(i), 0, 5'000'000);
    tracer.Finish(std::move(slow));
  }
  EXPECT_EQ(tracer.slow(), 3u);
  ASSERT_EQ(sink_calls.size(), 3u);
  EXPECT_NE(sink_calls[0].find("work0"), std::string::npos);
  const std::vector<std::string> ring = tracer.SlowTraces();
  ASSERT_EQ(ring.size(), 2u);
  EXPECT_NE(ring[0].find("work1"), std::string::npos);
  EXPECT_NE(ring[1].find("work2"), std::string::npos);
}

// ------------------------------------------------- scheduler integration

std::unique_ptr<service::ShardedCorpus> MustBuild(
    Sequence text, service::ShardedCorpusOptions options) {
  auto corpus = service::ShardedCorpus::Build(std::move(text), options);
  EXPECT_TRUE(corpus.ok()) << corpus.status().ToString();
  return std::move(corpus).value();
}

api::SearchRequest MakeRequest(const Sequence& query, int32_t threshold) {
  api::SearchRequest request;
  request.query = query;
  request.threshold = threshold;
  return request;
}

Workload ObsWorkload(int64_t text_length, int32_t num_queries) {
  WorkloadSpec spec;
  spec.text_length = text_length;
  spec.query_length = 64;
  spec.num_queries = num_queries;
  spec.divergence = 0.15;
  spec.seed = 97;
  return BuildWorkload(spec);
}

// The PR's acceptance bar: for a traced request, the recorded span tree
// must explain >= 90% of the end-to-end wall time of the call — no large
// untraced gap hiding between stages. Single shard + one worker thread so
// the child spans are sequential and their durations sum meaningfully.
TEST(SchedulerTracing, SpanTreeCoversWallTime) {
  const Workload w = ObsWorkload(/*text_length=*/200'000, /*num_queries=*/1);
  service::ShardedCorpusOptions options;
  options.shard_size = 300'000;  // single shard
  options.overlap = 512;
  auto corpus = MustBuild(w.text, options);
  ASSERT_EQ(corpus->num_shards(), 1u);
  service::QueryScheduler scheduler(*corpus,
                                    {.threads = 1, .cache_capacity = 0});

  Trace trace;
  api::SearchRequest request = MakeRequest(w.queries[0], 20);
  request.trace = &trace;
  Timer timer;
  auto response = scheduler.Search("alae", request);
  const double wall_ns = timer.ElapsedSeconds() * 1e9;
  ASSERT_TRUE(response.ok()) << response.status().ToString();

  const std::vector<TraceSpan> spans = trace.Spans();
  int root = -1;
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].name == "search" && spans[i].parent == -1) {
      root = static_cast<int>(i);
      break;
    }
  }
  ASSERT_NE(root, -1) << "no root span:\n" << trace.Render();

  int64_t children_ns = 0;
  std::vector<std::string> child_names;
  for (const TraceSpan& span : spans) {
    if (span.parent == root) {
      children_ns += span.end_ns - span.start_ns;
      child_names.push_back(span.name);
    }
  }
  auto has_child = [&child_names](const char* name) {
    for (const std::string& child : child_names) {
      if (child == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_child("compile")) << trace.Render();
  EXPECT_TRUE(has_child("execute")) << trace.Render();
  EXPECT_GE(static_cast<double>(children_ns), 0.90 * wall_ns)
      << "span tree explains only "
      << 100.0 * static_cast<double>(children_ns) / wall_ns
      << "% of the request:\n"
      << trace.Render();
}

TEST(SchedulerMetrics, CountersLatencyAndCacheTiers) {
  const Workload w = ObsWorkload(/*text_length=*/20'000, /*num_queries=*/2);
  service::ShardedCorpusOptions options;
  options.shard_size = 8'000;
  options.overlap = 512;
  auto corpus = MustBuild(w.text, options);

  MetricsRegistry registry;
  service::QueryScheduler scheduler(
      *corpus, {.threads = 2, .cache_capacity = 8, .registry = &registry});

  api::SearchRequest request = MakeRequest(w.queries[0], 20);
  ASSERT_TRUE(scheduler.Search("alae", request).ok());
  ASSERT_TRUE(scheduler.Search("alae", request).ok());  // response-cache hit

  EXPECT_EQ(
      registry.GetCounter("alae_scheduler_requests_total{verb=\"search\"}")
          ->Value(),
      2u);
  EXPECT_GT(registry.GetCounter("alae_engine_dp_cells_total")->Value(), 0u);
  EXPECT_GE(registry.GetCounter("alae_scheduler_response_cache_hits_total")
                ->Value(),
            1u);
  EXPECT_EQ(registry.GetHistogram("alae_scheduler_search_seconds")
                ->Snap()
                .count,
            2u);

  const std::string exposition = registry.Expose();
  EXPECT_NE(
      exposition.find("alae_scheduler_requests_total{verb=\"search\"} 2"),
      std::string::npos);
  EXPECT_NE(exposition.find("alae_scheduler_search_seconds_count 2"),
            std::string::npos);
}

TEST(SchedulerMetrics, DisabledMetricsLeaveRegistryEmpty) {
  const Workload w = ObsWorkload(/*text_length=*/10'000, /*num_queries=*/1);
  service::ShardedCorpusOptions options;
  options.shard_size = 12'000;
  options.overlap = 256;
  auto corpus = MustBuild(w.text, options);

  MetricsRegistry registry;
  service::QueryScheduler scheduler(
      *corpus,
      {.threads = 1, .enable_metrics = false, .registry = &registry});
  ASSERT_TRUE(scheduler.Search("alae", MakeRequest(w.queries[0], 20)).ok());
  EXPECT_EQ(registry.Expose(), "");
}

TEST(SchedulerTracing, SamplerOwnsUnsuppliedTraces) {
  const Workload w = ObsWorkload(/*text_length=*/10'000, /*num_queries=*/1);
  service::ShardedCorpusOptions options;
  options.shard_size = 12'000;
  options.overlap = 256;
  auto corpus = MustBuild(w.text, options);

  MetricsRegistry registry;
  std::vector<std::string> slow_logs;
  service::QueryScheduler scheduler(
      *corpus, {.threads = 1,
                .cache_capacity = 0,
                .registry = &registry,
                .trace_sample_rate = 1.0,
                .slow_query_ms = 0,  // sampled, but nothing qualifies slow
                .slow_query_sink = [&slow_logs](const std::string& rendered) {
                  slow_logs.push_back(rendered);
                }});
  api::SearchRequest request = MakeRequest(w.queries[0], 20);
  ASSERT_TRUE(scheduler.Search("alae", request).ok());
  EXPECT_EQ(scheduler.tracer().sampled(), 1u);

  // slow_query_ms = 0 disables the slow log entirely (not "everything is
  // slow"): the sink must never fire.
  EXPECT_TRUE(slow_logs.empty());
  EXPECT_TRUE(scheduler.tracer().SlowTraces().empty());
}

}  // namespace
}  // namespace alae
