// Query-plan semantics: compile-once-run-many must equal ad-hoc Search for
// every backend (including across aligner instances and shard counts), the
// canonical fingerprint must be injective over everything that determines
// the answer, and the fused multi-index ALAE walk must reproduce each
// index's single-index answer exactly.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/api/api.h"
#include "src/core/alae.h"
#include "src/index/fm_index.h"
#include "src/service/service.h"
#include "src/sim/generator.h"
#include "src/sim/workload.h"

namespace alae {
namespace {

using api::AlignerRegistry;
using api::QueryPlan;
using api::SearchRequest;
using api::SearchResponse;
using api::StatusCode;

SearchRequest MakeRequest(const Sequence& query, int32_t threshold) {
  SearchRequest request;
  request.query = query;
  request.threshold = threshold;
  return request;
}

// Compile once, execute many times, against the compiling aligner and a
// sibling aligner over a different text: every execution must equal that
// aligner's ad-hoc answer.
TEST(QueryPlan, CompileOnceRunManyMatchesAdHocAllBackends) {
  for (uint64_t seed : {21u, 22u}) {
    SequenceGenerator gen(seed);
    Sequence text_a = gen.Random(1'500, Alphabet::Dna());
    Sequence text_b = gen.Random(1'100, Alphabet::Dna());
    AlignerRegistry registry_a(text_a);
    AlignerRegistry registry_b(text_b);
    for (const std::string& backend : AlignerRegistry::BuiltinNames()) {
      std::unique_ptr<api::Aligner> a = *registry_a.Create(backend);
      std::unique_ptr<api::Aligner> b = *registry_b.Create(backend);
      for (int q = 0; q < 3; ++q) {
        SearchRequest request =
            MakeRequest(gen.HomologousQuery(text_a, 40, 0.8, 0.1, 0.02), 16);
        api::StatusOr<std::unique_ptr<QueryPlan>> plan = a->Compile(request);
        ASSERT_TRUE(plan.ok()) << backend << ": " << plan.status().ToString();

        api::StatusOr<SearchResponse> adhoc_a = a->Search(request);
        ASSERT_TRUE(adhoc_a.ok());
        api::StatusOr<SearchResponse> adhoc_b = b->Search(request);
        ASSERT_TRUE(adhoc_b.ok());
        for (int rep = 0; rep < 2; ++rep) {
          api::StatusOr<SearchResponse> via_plan_a = a->Search(**plan);
          ASSERT_TRUE(via_plan_a.ok());
          EXPECT_EQ(via_plan_a->hits, adhoc_a->hits)
              << backend << " seed " << seed << " rep " << rep;
          EXPECT_EQ(via_plan_a->stats.plan_reuses, 1u);
          // Cross-aligner reuse: the plan carries no text-side state, so
          // executing it on a sibling is that sibling's own answer.
          api::StatusOr<SearchResponse> via_plan_b = b->Search(**plan);
          ASSERT_TRUE(via_plan_b.ok());
          EXPECT_EQ(via_plan_b->hits, adhoc_b->hits)
              << backend << " cross-aligner, seed " << seed;
        }
      }
    }
  }
}

TEST(QueryPlan, AdHocSearchReportsCompileAccounting) {
  SequenceGenerator gen(23);
  Sequence text = gen.Random(800, Alphabet::Dna());
  AlignerRegistry registry(text);
  std::unique_ptr<api::Aligner> aligner = *registry.Create("alae");
  SearchRequest request =
      MakeRequest(gen.HomologousQuery(text, 36, 0.8, 0.1, 0.02), 14);
  api::StatusOr<SearchResponse> response = aligner->Search(request);
  ASSERT_TRUE(response.ok());
  // An ad-hoc Search compiles privately: compile time reported, no reuse.
  EXPECT_GT(response->stats.plan_compile_ns, 0u);
  EXPECT_EQ(response->stats.plan_reuses, 0u);
}

TEST(QueryPlan, RejectsBackendAndAlphabetMismatch) {
  SequenceGenerator gen(24);
  Sequence dna = gen.Random(600, Alphabet::Dna());
  Sequence protein = gen.Random(600, Alphabet::Protein());
  AlignerRegistry dna_registry(dna);
  AlignerRegistry protein_registry(protein);
  std::unique_ptr<api::Aligner> sw = *dna_registry.Create("sw");
  std::unique_ptr<api::Aligner> alae = *dna_registry.Create("alae");
  std::unique_ptr<api::Aligner> protein_sw = *protein_registry.Create("sw");

  SearchRequest request = MakeRequest(gen.Random(20, Alphabet::Dna()), 10);
  api::StatusOr<std::unique_ptr<QueryPlan>> plan = sw->Compile(request);
  ASSERT_TRUE(plan.ok());

  // Wrong backend: a plan only runs on aligners with the compiling name.
  EXPECT_EQ(alae->Search(**plan).status().code(),
            StatusCode::kInvalidArgument);
  // Wrong alphabet: a sibling over a protein text must refuse a DNA plan.
  EXPECT_EQ(protein_sw->Search(**plan).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(QueryPlan, PrepareIsCompileStatus) {
  SequenceGenerator gen(25);
  Sequence text = gen.Random(700, Alphabet::Dna());
  AlignerRegistry registry(text);
  std::unique_ptr<api::Aligner> aligner = *registry.Create("alae");
  SearchRequest good = MakeRequest(gen.Random(24, Alphabet::Dna()), 12);
  EXPECT_TRUE(aligner->Prepare(good).ok());
  SearchRequest bad = good;
  bad.threshold = 0;
  EXPECT_EQ(aligner->Prepare(bad).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(aligner->Compile(bad).status().code(),
            StatusCode::kInvalidArgument);
}

// The fingerprint is an injective encoding of everything that determines
// the full answer: any change to backend, scheme, threshold, options,
// alphabet or query must change it; equal requests must reproduce it.
TEST(QueryPlan, FingerprintInjectiveOverAnswerParameters) {
  SequenceGenerator gen(26);
  Sequence query = gen.Random(24, Alphabet::Dna());
  SearchRequest base = MakeRequest(query, 12);

  EXPECT_EQ(QueryPlan::Fingerprint("alae", base),
            QueryPlan::Fingerprint("alae", base));

  std::set<std::string> seen;
  auto add = [&seen](std::string_view backend, const SearchRequest& request) {
    auto [it, inserted] =
        seen.insert(QueryPlan::Fingerprint(backend, request));
    (void)it;
    EXPECT_TRUE(inserted) << "fingerprint collision for backend " << backend;
  };
  add("alae", base);
  add("bwt-sw", base);  // backend distinguishes
  {
    SearchRequest r = base;
    r.threshold = 13;
    add("alae", r);
  }
  for (int field = 0; field < 4; ++field) {
    SearchRequest r = base;
    if (field == 0) r.scheme.sa = 2;
    if (field == 1) r.scheme.sb = -4;
    if (field == 2) r.scheme.sg = -6;
    if (field == 3) r.scheme.ss = -3;
    add("alae", r);
  }
  {
    SearchRequest r = base;
    r.alae.domination_filter = false;
    add("alae", r);
    r.alae.reuse = false;
    add("alae", r);
  }
  {
    SearchRequest r = base;
    r.blast.word_size = 7;
    add("alae", r);
    r.blast.two_hit = true;
    add("alae", r);
    r.blast.x_drop_gapped = 21;
    add("alae", r);
  }
  {
    SearchRequest r = base;
    r.query = gen.Random(24, Alphabet::Dna());  // same length, other symbols
    add("alae", r);
    r.query = gen.Random(23, Alphabet::Dna());
    add("alae", r);
  }

  // max_hits deliberately does NOT change the fingerprint (it is a stream
  // cap, not a compiled parameter) — but it must change the cache key, so
  // a truncated response is never served to an uncapped request.
  SearchRequest capped = base;
  capped.max_hits = 3;
  EXPECT_EQ(QueryPlan::Fingerprint("alae", base),
            QueryPlan::Fingerprint("alae", capped));
  EXPECT_NE(service::ResultCache::KeyFor("alae", base, 7),
            service::ResultCache::KeyFor("alae", capped, 7));
  // The plan-based key matches the request-based key byte for byte.
  AlignerRegistry registry(gen.Random(500, Alphabet::Dna()));
  std::unique_ptr<api::Aligner> aligner = *registry.Create("alae");
  api::StatusOr<std::unique_ptr<QueryPlan>> plan = aligner->Compile(base);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(service::ResultCache::KeyFor(**plan, base.max_hits, 7),
            service::ResultCache::KeyFor("alae", base, 7));
}

// The fused multi-index walk must reproduce, per index, exactly the
// single-index engine's hit set — across unequal shard sizes, shards too
// small to anchor the q-prefix, and with the work-pruning toggles off.
TEST(QueryPlan, FusedShardedRunMatchesPerIndexRuns) {
  SequenceGenerator gen(27);
  for (uint64_t seed : {31u, 32u, 33u}) {
    SequenceGenerator sgen(seed);
    std::vector<std::unique_ptr<AlaeIndex>> owned;
    std::vector<const AlaeIndex*> indexes;
    const int64_t sizes[] = {900, 350, 2, 1300};
    for (int64_t n : sizes) {
      owned.push_back(
          std::make_unique<AlaeIndex>(sgen.Random(n, Alphabet::Dna())));
      indexes.push_back(owned.back().get());
    }
    for (int variant = 0; variant < 3; ++variant) {
      AlaeConfig config;
      if (variant == 1) config.reuse = false;
      if (variant == 2) {
        config.domination_filter = false;
        config.score_filter = false;
      }
      Sequence query =
          sgen.HomologousQuery(owned[0]->text(), 32, 0.8, 0.1, 0.02);
      AlaeQueryPlan plan(query, ScoringScheme::Default(), 14, config);
      std::vector<ResultCollector> fused;
      Alae::RunSharded(plan, indexes, &fused);
      ASSERT_EQ(fused.size(), indexes.size());
      for (size_t i = 0; i < indexes.size(); ++i) {
        Alae single(*indexes[i], config);
        EXPECT_EQ(fused[i].Sorted(), single.Run(plan).Sorted())
            << "lane " << i << " variant " << variant << " seed " << seed;
      }
    }
  }
}

// Scheduler differential across shard counts and both execution modes: the
// fused fan-out and the per-shard fan-out must both be bit-exact against
// the unsharded facade for ALAE (the full all-backend differential lives
// in service_test).
TEST(QueryPlan, SchedulerFusedAndPerShardMatchUnshardedAcrossShardCounts) {
  WorkloadSpec spec;
  spec.text_length = 2'400;
  spec.query_length = 40;
  spec.num_queries = 3;
  spec.divergence = 0.2;
  spec.seed = 99;
  Workload w = BuildWorkload(spec);
  AlignerRegistry registry(w.text);

  for (int64_t shard_size : {2'500L, 1'200L, 600L}) {
    service::ShardedCorpusOptions options;
    options.shard_size = shard_size;
    options.overlap = shard_size >= 2'500 ? 0 : 180;
    auto corpus = service::ShardedCorpus::Build(w.text, options);
    ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
    for (bool fused : {true, false}) {
      service::QueryScheduler scheduler(
          **corpus, {.threads = 2, .fuse_alae_shards = fused});
      for (const Sequence& query : w.queries) {
        SearchRequest request = MakeRequest(query, 16);
        api::StatusOr<SearchResponse> sharded =
            scheduler.Search("alae", request);
        ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
        std::unique_ptr<api::Aligner> reference = *registry.Create("alae");
        api::StatusOr<SearchResponse> unsharded = reference->Search(request);
        ASSERT_TRUE(unsharded.ok());
        EXPECT_EQ(sharded->hits, unsharded->hits)
            << "shard_size " << shard_size << " fused " << fused;
        // The shared plan is compiled once and reused by every engine
        // execution behind the response.
        EXPECT_GE(sharded->stats.plan_reuses, 1u);
      }
    }
  }
}

// ExtendSingleton is the singleton specialisation of ExtendAll: for every
// one-row range, at most one symbol extends, and the results agree.
TEST(QueryPlan, ExtendSingletonMatchesExtendAll) {
  SequenceGenerator gen(28);
  for (bool protein : {false, true}) {
    Sequence text =
        gen.Random(700, protein ? Alphabet::Protein() : Alphabet::Dna());
    FmIndex fm(text);
    std::vector<SaRange> children(static_cast<size_t>(fm.sigma()));
    for (int64_t row = 0; row < static_cast<int64_t>(text.size()) + 1;
         ++row) {
      fm.ExtendAll({row, row + 1}, children.data());
      Symbol only = 0;
      SaRange child;
      const bool extended = fm.ExtendSingleton(row, &only, &child);
      int nonempty = 0;
      for (int c = 0; c < fm.sigma(); ++c) {
        if (children[static_cast<size_t>(c)].Empty()) continue;
        ++nonempty;
        ASSERT_TRUE(extended) << "row " << row;
        EXPECT_EQ(static_cast<int>(only), c) << "row " << row;
        EXPECT_EQ(child, children[static_cast<size_t>(c)]) << "row " << row;
      }
      EXPECT_EQ(nonempty, extended ? 1 : 0) << "row " << row;
    }
  }
}

}  // namespace
}  // namespace alae
