#include "src/io/alphabet.h"

#include <gtest/gtest.h>

namespace alae {
namespace {

TEST(Alphabet, DnaBasics) {
  const Alphabet& dna = Alphabet::Dna();
  EXPECT_EQ(dna.sigma(), 4);
  EXPECT_EQ(dna.kind(), AlphabetKind::kDna);
  EXPECT_EQ(dna.CodeOf('A'), 0);
  EXPECT_EQ(dna.CodeOf('C'), 1);
  EXPECT_EQ(dna.CodeOf('G'), 2);
  EXPECT_EQ(dna.CodeOf('T'), 3);
  EXPECT_EQ(dna.CodeOf('a'), 0);  // lowercase accepted
  EXPECT_EQ(dna.CodeOf('N'), -1);
  EXPECT_EQ(dna.CharOf(2), 'G');
}

TEST(Alphabet, ProteinBasics) {
  const Alphabet& prot = Alphabet::Protein();
  EXPECT_EQ(prot.sigma(), 20);
  EXPECT_EQ(prot.kind(), AlphabetKind::kProtein);
  // Round trip for every residue.
  for (int c = 0; c < 20; ++c) {
    char ch = prot.CharOf(static_cast<Symbol>(c));
    EXPECT_EQ(prot.CodeOf(ch), c);
  }
  EXPECT_EQ(prot.CodeOf('B'), -1);  // ambiguity code not canonical
  EXPECT_EQ(prot.CodeOf('Z'), -1);
}

TEST(Alphabet, EncodeMasksUnknown) {
  size_t masked = 0;
  std::vector<Symbol> codes = Alphabet::Dna().Encode("ACGTNNRA", &masked);
  EXPECT_EQ(masked, 3u);
  ASSERT_EQ(codes.size(), 8u);
  EXPECT_EQ(codes[4], 0);  // N masked to code 0
  EXPECT_EQ(codes[7], 0);  // A
}

TEST(Alphabet, EncodeDecodeRoundTrip) {
  std::string s = "GATTACAGATTACA";
  std::vector<Symbol> codes = Alphabet::Dna().Encode(s);
  EXPECT_EQ(Alphabet::Dna().Decode(codes), s);
}

TEST(Alphabet, GetByKind) {
  EXPECT_EQ(Alphabet::Get(AlphabetKind::kDna).sigma(), 4);
  EXPECT_EQ(Alphabet::Get(AlphabetKind::kProtein).sigma(), 20);
}

}  // namespace
}  // namespace alae
