#include "src/stats/karlin.h"

#include <gtest/gtest.h>

#include <cmath>

namespace alae {
namespace {

TEST(Karlin, LambdaSolvesTheMgfEquation) {
  for (int scheme_idx = 0; scheme_idx < 4; ++scheme_idx) {
    for (int sigma : {4, 20}) {
      ScoringScheme s = ScoringScheme::Fig9(scheme_idx);
      double lambda = KarlinStats::Lambda(s, sigma);
      ASSERT_GT(lambda, 0.0) << s.ToString();
      double p = 1.0 / sigma;
      double mgf = p * std::exp(lambda * s.sa) +
                   (1 - p) * std::exp(lambda * s.sb);
      EXPECT_NEAR(mgf, 1.0, 1e-9) << s.ToString() << " sigma=" << sigma;
    }
  }
}

TEST(Karlin, LambdaKnownValueForDefaultDna) {
  // For <1,-3> on uniform DNA: 0.25*e^l + 0.75*e^{-3l} = 1 has the root
  // l = ln(...) ~ 1.374 (the NCBI table value for match/mismatch 1/-3).
  double lambda = KarlinStats::Lambda(ScoringScheme::Default(), 4);
  EXPECT_NEAR(lambda, 1.374, 0.01);
}

TEST(Karlin, LambdaDecreasesWithMilderMismatch) {
  // |sb| = 1 makes high scores easier, so lambda must be smaller.
  double harsh = KarlinStats::Lambda(ScoringScheme::Default(), 4);     // -3
  double mild = KarlinStats::Lambda(ScoringScheme::Fig9(2), 4);        // -1
  EXPECT_LT(mild, harsh);
}

TEST(Karlin, KIsInPhysicalRange) {
  for (int scheme_idx = 0; scheme_idx < 4; ++scheme_idx) {
    KarlinParams params =
        KarlinStats::Compute(ScoringScheme::Fig9(scheme_idx), 4);
    EXPECT_GT(params.k, 0.0);
    EXPECT_LE(params.k, 1.0);
  }
}

TEST(Karlin, EValueThresholdConversionRoundTrips) {
  ScoringScheme s = ScoringScheme::Default();
  int64_t m = 10000, n = 1000000;
  for (double e : {1e-15, 1e-5, 1.0, 10.0}) {
    int32_t h = KarlinStats::EValueToThreshold(e, m, n, s, 4);
    ASSERT_GE(h, 1);
    // The E-value of a score at the threshold must be <= requested E, and
    // one score lower must exceed it (ceiling semantics).
    EXPECT_LE(KarlinStats::ScoreToEValue(h, m, n, s, 4), e * 1.0001);
    EXPECT_GT(KarlinStats::ScoreToEValue(h - 1, m, n, s, 4), e * 0.9999);
  }
}

TEST(Karlin, SmallerEValueMeansLargerThreshold) {
  ScoringScheme s = ScoringScheme::Default();
  int32_t h10 = KarlinStats::EValueToThreshold(10, 10000, 1000000, s, 4);
  int32_t h5 = KarlinStats::EValueToThreshold(1e-5, 10000, 1000000, s, 4);
  int32_t h15 = KarlinStats::EValueToThreshold(1e-15, 10000, 1000000, s, 4);
  EXPECT_LT(h10, h5);
  EXPECT_LT(h5, h15);
}

TEST(Karlin, ThresholdGrowsLogarithmicallyWithSearchSpace) {
  ScoringScheme s = ScoringScheme::Default();
  int32_t h1 = KarlinStats::EValueToThreshold(10, 1000, 100000, s, 4);
  int32_t h2 = KarlinStats::EValueToThreshold(10, 1000, 10000000, s, 4);
  EXPECT_GT(h2, h1);
  // ln(100x) / lambda ~ 3.3 extra score.
  EXPECT_LE(h2 - h1, 6);
}

TEST(Karlin, ComputeIsCachedAndDeterministic) {
  KarlinParams a = KarlinStats::Compute(ScoringScheme::Default(), 4);
  KarlinParams b = KarlinStats::Compute(ScoringScheme::Default(), 4);
  EXPECT_EQ(a.lambda, b.lambda);
  EXPECT_EQ(a.k, b.k);
}

}  // namespace
}  // namespace alae
