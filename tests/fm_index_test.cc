#include "src/index/fm_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "src/sim/generator.h"

namespace alae {
namespace {

// Brute-force occurrence count/starts of a pattern in a text.
std::vector<int64_t> BruteFind(const Sequence& text, const Sequence& pat) {
  std::vector<int64_t> out;
  if (pat.size() == 0 || pat.size() > text.size()) return out;
  for (size_t i = 0; i + pat.size() <= text.size(); ++i) {
    bool ok = true;
    for (size_t k = 0; k < pat.size(); ++k) {
      if (text[i + k] != pat[k]) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(static_cast<int64_t>(i));
  }
  return out;
}

class FmIndexTest : public ::testing::TestWithParam<bool> {};

TEST_P(FmIndexTest, FindAndLocateMatchBruteForce) {
  SequenceGenerator gen(7);
  FmIndexOptions options;
  options.use_wavelet = GetParam();
  for (int trial = 0; trial < 12; ++trial) {
    int64_t n = 50 + static_cast<int64_t>(gen.rng().Below(400));
    const Alphabet& alphabet =
        trial % 2 ? Alphabet::Protein() : Alphabet::Dna();
    Sequence text = gen.Random(n, alphabet);
    FmIndex fm(text, options);
    for (int p = 0; p < 30; ++p) {
      int64_t plen = 1 + static_cast<int64_t>(gen.rng().Below(8));
      Sequence pat;
      if (p % 3 == 0 && n > plen) {
        // Guaranteed hit: sample from the text.
        int64_t at = static_cast<int64_t>(
            gen.rng().Below(static_cast<uint64_t>(n - plen)));
        pat = text.Substr(static_cast<size_t>(at), static_cast<size_t>(plen));
      } else {
        pat = gen.Random(plen, alphabet);
      }
      std::vector<int64_t> expected = BruteFind(text, pat);
      SaRange range = fm.Find(pat.symbols());
      EXPECT_EQ(range.Count(), static_cast<int64_t>(expected.size()));
      if (!range.Empty()) {
        std::vector<int64_t> got = fm.Locate(range);
        std::sort(got.begin(), got.end());
        EXPECT_EQ(got, expected);
      }
    }
  }
}

TEST_P(FmIndexTest, ExtendBuildsPatternsBackwards) {
  // Extend(range, c) must compute the range of c·S from the range of S.
  FmIndexOptions options;
  options.use_wavelet = GetParam();
  Sequence text = Sequence::FromString("GCTAGCTAGGCTA", Alphabet::Dna());
  FmIndex fm(text, options);
  // Build "CTA" backwards: A, TA, CTA.
  SaRange r = fm.FullRange();
  Sequence a = Sequence::FromString("A", Alphabet::Dna());
  Sequence ta = Sequence::FromString("TA", Alphabet::Dna());
  Sequence cta = Sequence::FromString("CTA", Alphabet::Dna());
  r = fm.Extend(r, static_cast<Symbol>(0));  // 'A'
  EXPECT_EQ(r.Count(), static_cast<int64_t>(BruteFind(text, a).size()));
  r = fm.Extend(r, static_cast<Symbol>(3));  // 'T'
  EXPECT_EQ(r.Count(), static_cast<int64_t>(BruteFind(text, ta).size()));
  r = fm.Extend(r, static_cast<Symbol>(1));  // 'C'
  EXPECT_EQ(r.Count(), static_cast<int64_t>(BruteFind(text, cta).size()));
}

TEST_P(FmIndexTest, FullRangeCountsAllSuffixes) {
  FmIndexOptions options;
  options.use_wavelet = GetParam();
  SequenceGenerator gen(8);
  Sequence text = gen.Random(100, Alphabet::Dna());
  FmIndex fm(text, options);
  EXPECT_EQ(fm.FullRange().Count(), 101);
}

TEST_P(FmIndexTest, EmptyPatternAbsentPattern) {
  FmIndexOptions options;
  options.use_wavelet = GetParam();
  Sequence text = Sequence::FromString("AAAA", Alphabet::Dna());
  FmIndex fm(text, options);
  Sequence absent = Sequence::FromString("G", Alphabet::Dna());
  EXPECT_TRUE(fm.Find(absent.symbols()).Empty());
  // Extending an empty range stays empty.
  SaRange empty{0, 0};
  EXPECT_TRUE(fm.Extend(empty, 0).Empty());
}

TEST_P(FmIndexTest, SampleRateVariationsLocateCorrectly) {
  SequenceGenerator gen(9);
  Sequence text = gen.Random(300, Alphabet::Dna());
  for (int rate : {1, 4, 64}) {
    FmIndexOptions options;
    options.use_wavelet = GetParam();
    options.sa_sample_rate = rate;
    FmIndex fm(text, options);
    Sequence pat = text.Substr(100, 5);
    std::vector<int64_t> expected = BruteFind(text, pat);
    std::vector<int64_t> got = fm.Locate(fm.Find(pat.symbols()));
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << "rate " << rate;
  }
}

// The batched Locate (up to four interleaved, prefetched LF walks in flat
// mode) must stay bit-identical to the one-row-at-a-time walk: same
// positions in the same slots, same total LF step count.
TEST_P(FmIndexTest, LocateBatchedMatchesPerRowWalk) {
  SequenceGenerator gen(11);
  FmIndexOptions options;
  options.use_wavelet = GetParam();
  for (int trial = 0; trial < 6; ++trial) {
    const Alphabet& alphabet =
        trial % 2 ? Alphabet::Protein() : Alphabet::Dna();
    int64_t n = 400 + static_cast<int64_t>(gen.rng().Below(3000));
    Sequence text = gen.Random(n, alphabet);
    FmIndex fm(text, options);
    for (int p = 0; p < 20; ++p) {
      // Short patterns give wide ranges (many more rows than the 4-lane
      // batch), longer ones exercise the 1..3-row tail.
      int64_t plen = 1 + static_cast<int64_t>(gen.rng().Below(6));
      int64_t at = static_cast<int64_t>(
          gen.rng().Below(static_cast<uint64_t>(n - plen)));
      Sequence pat = text.Substr(static_cast<size_t>(at),
                                 static_cast<size_t>(plen));
      SaRange range = fm.Find(pat.symbols());
      ASSERT_FALSE(range.Empty());
      uint64_t batched_steps = 0;
      std::vector<int64_t> got = fm.Locate(range, &batched_steps);
      ASSERT_EQ(got.size(), static_cast<size_t>(range.Count()));
      for (int64_t r = range.lo; r < range.hi; ++r) {
        EXPECT_EQ(got[static_cast<size_t>(r - range.lo)], fm.LocateRow(r))
            << "row " << r << " of [" << range.lo << "," << range.hi << ")";
      }
      // Determinism of the counter, and it must tick whenever some row sat
      // off the sample grid (rate 32 over hundreds of rows guarantees
      // unsampled rows in practice; just require monotone accumulation).
      uint64_t second = 0;
      std::vector<int64_t> again = fm.Locate(range, &second);
      EXPECT_EQ(second, batched_steps);
      EXPECT_EQ(again, got);
    }
  }
}

TEST_P(FmIndexTest, SizesArePositiveAndPackedFlatIsSmallestForDna) {
  SequenceGenerator gen(10);
  Sequence text = gen.Random(20000, Alphabet::Dna());
  FmIndexOptions flat;
  FmIndexOptions wave;
  wave.use_wavelet = true;
  FmIndex fm_flat(text, flat);
  FmIndex fm_wave(text, wave);
  EXPECT_GT(fm_flat.SizeBytes().Total(), 0u);
  EXPECT_GT(fm_wave.SizeBytes().Total(), 0u);
  // The packed occ blocks (2 bits/char + interleaved checkpoints, ~2.7
  // bits/char total) beat both a raw byte BWT and the wavelet occ (~3
  // bits/char plus rank overhead) for DNA.
  EXPECT_LT(fm_flat.SizeBytes().bwt_bytes, text.size());
  EXPECT_LT(fm_flat.SizeBytes().bwt_bytes, fm_wave.SizeBytes().bwt_bytes);
}

INSTANTIATE_TEST_SUITE_P(FlatAndWavelet, FmIndexTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Wavelet" : "Flat";
                         });

}  // namespace
}  // namespace alae
