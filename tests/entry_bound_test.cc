#include "src/stats/entry_bound.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace alae {
namespace {

// §6's headline numbers. The paper reports, for the default DNA scheme
// <1,-3,-5,-2>: 4.47*m*n^0.6038, versus BWT-SW's 69*m*n^0.628.
TEST(EntryBound, DefaultDnaSchemeMatchesPaper) {
  EntryBound b = ComputeEntryBound(ScoringScheme::Default(), 4);
  EXPECT_EQ(b.q, 4);
  EXPECT_NEAR(b.s, 4.0, 1e-12);
  EXPECT_NEAR(b.exponent, 0.6038, 5e-4);
  EXPECT_NEAR(b.coefficient, 4.47, 5e-2);
}

// DNA worst case <1,-1,-5,-2>: 9.05*m*n^0.896 (§6, §7.4).
TEST(EntryBound, DnaWorstCaseMatchesPaper) {
  EntryBound b = ComputeEntryBound(ScoringScheme::Fig9(2), 4);
  EXPECT_EQ(b.q, 2);
  EXPECT_NEAR(b.exponent, 0.896, 5e-3);
  EXPECT_NEAR(b.coefficient, 9.05, 5e-2);
}

// DNA best case <1,-4,-5,-2>: 4.50*m*n^0.520.
TEST(EntryBound, DnaBestCaseMatchesPaper) {
  EntryBound b = ComputeEntryBound(ScoringScheme::Fig9(1), 4);
  EXPECT_EQ(b.q, 5);
  EXPECT_NEAR(b.exponent, 0.520, 5e-3);
  EXPECT_NEAR(b.coefficient, 4.50, 5e-2);
}

// Protein corners: 8.28*m*n^0.364 (sb=-4, q=5) and 7.49*m*n^0.723 (sb=-1).
TEST(EntryBound, ProteinCornersMatchPaper) {
  EntryBound best = ComputeEntryBound(ScoringScheme{1, -4, -5, -2}, 20);
  EXPECT_NEAR(best.exponent, 0.364, 5e-3);
  EXPECT_NEAR(best.coefficient, 8.28, 5e-2);
  EntryBound worst = ComputeEntryBound(ScoringScheme{1, -1, -5, -2}, 20);
  EXPECT_NEAR(worst.exponent, 0.723, 5e-3);
  EXPECT_NEAR(worst.coefficient, 7.49, 5e-2);
}

// Sweeping the full BLAST grid reproduces the ranges the abstract quotes:
// DNA exponents within [0.520, 0.896], protein within [0.364, 0.723].
TEST(EntryBound, BlastGridRangesMatchAbstract) {
  for (int sigma : {4, 20}) {
    double lo_exp = 1e9, hi_exp = -1e9;
    for (const ScoringScheme& s : BlastSchemeGrid()) {
      EntryBound b = ComputeEntryBound(s, sigma);
      lo_exp = std::min(lo_exp, b.exponent);
      hi_exp = std::max(hi_exp, b.exponent);
      EXPECT_GT(b.coefficient, 0) << s.ToString();
      EXPECT_GT(b.k2, 1.0) << s.ToString();  // sublinear growth needs k2>1
      EXPECT_LT(b.k2, sigma) << s.ToString();
    }
    if (sigma == 4) {
      EXPECT_NEAR(lo_exp, 0.520, 5e-3);
      EXPECT_NEAR(hi_exp, 0.896, 5e-3);
    } else {
      EXPECT_NEAR(lo_exp, 0.364, 5e-3);
      EXPECT_NEAR(hi_exp, 0.723, 5e-3);
    }
  }
}

TEST(EntryBound, AlaeBeatsBwtSwBoundForDefaultScheme) {
  // ALAE: 4.47*m*n^0.6038 vs BWT-SW: 69*m*n^0.628 — for any n >= 1 the
  // ALAE bound is smaller.
  EntryBound b = ComputeEntryBound(ScoringScheme::Default(), 4);
  for (double n : {1e6, 1e8, 1e9}) {
    double alae = b.Evaluate(1.0, n);
    double bwtsw = 69.0 * std::pow(n, 0.628);
    EXPECT_LT(alae, bwtsw) << "n=" << n;
  }
}

TEST(EntryBound, EvaluateScalesLinearlyInM) {
  EntryBound b = ComputeEntryBound(ScoringScheme::Default(), 4);
  EXPECT_NEAR(b.Evaluate(2000, 1e6), 2 * b.Evaluate(1000, 1e6), 1e-6);
}

TEST(EntryBound, LargerQImprovesTheBound) {
  // Larger |sb| -> larger q and s -> smaller exponent.
  EntryBound b2 = ComputeEntryBound(ScoringScheme{1, -2, -5, -2}, 4);
  EntryBound b3 = ComputeEntryBound(ScoringScheme{1, -3, -5, -2}, 4);
  EntryBound b4 = ComputeEntryBound(ScoringScheme{1, -4, -5, -2}, 4);
  EXPECT_GT(b2.exponent, b3.exponent);
  EXPECT_GT(b3.exponent, b4.exponent);
}

TEST(EntryBound, GridHas48Schemes) {
  EXPECT_EQ(BlastSchemeGrid().size(), 48u);  // 6 pairs x 4 opens x 2 extends
}

}  // namespace
}  // namespace alae
