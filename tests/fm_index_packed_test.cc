// Differential tests for the packed occ blocks: rank results are compared
// against a naive counting oracle over the BWT for every (row, symbol) in
// both checkpoint layouts (two-level u8-delta and legacy single-level u32),
// ExtendAll against per-symbol Extend, and the "ALAEF3M" serialisation
// against truncation at every byte offset plus targeted header and
// occ-block corruption. Legacy "ALAEF2M" payloads must keep loading
// bit-exact.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/index/bwt.h"
#include "src/index/fm_index.h"
#include "src/index/suffix_array.h"
#include "src/sim/generator.h"
#include "src/util/serialize.h"

namespace alae {
namespace {

// Naive shifted-symbol counting oracle: C table plus occ(s, row) by scalar
// scan of the BWT, rebuilt here independently of FmIndex's occ structure.
struct NaiveOcc {
  explicit NaiveOcc(const Sequence& text) {
    std::vector<int64_t> sa = BuildSuffixArray(text.symbols(), text.sigma());
    bwt = BuildBwt(text.symbols(), sa).bwt;
    c.assign(static_cast<size_t>(text.sigma()) + 2, 0);
    for (Symbol s : bwt) ++c[static_cast<size_t>(s) + 1];
    for (size_t s = 1; s < c.size(); ++s) c[s] += c[s - 1];
  }

  int64_t Occ(Symbol shifted, int64_t row) const {
    int64_t r = 0;
    for (int64_t i = 0; i < row; ++i) {
      if (bwt[static_cast<size_t>(i)] == shifted) ++r;
    }
    return r;
  }

  std::vector<Symbol> bwt;
  std::vector<int64_t> c;
};

// Texts whose row count (n+1) straddles the packed block boundaries: DNA
// blocks cover 192 symbols, single-level 4-bit/byte blocks 128, two-level
// blocks 96/64 with absolute rows every 192/256 symbols.
std::vector<int64_t> BoundaryLengths() {
  return {1, 63, 64, 96, 127, 128, 191, 192, 193, 255, 256, 383, 384, 419};
}

TEST(FmIndexPacked, OccMatchesNaiveOracleForEveryRowAndSymbol) {
  SequenceGenerator gen(2024);
  for (const Alphabet* alphabet : {&Alphabet::Dna(), &Alphabet::Protein()}) {
    for (bool two_level : {true, false}) {
      FmIndexOptions options;
      options.two_level_occ = two_level;
      for (int64_t n : BoundaryLengths()) {
        Sequence text = gen.Random(n, *alphabet);
        FmIndex fm(text, options);
        NaiveOcc oracle(text);
        const int64_t rows = static_cast<int64_t>(n) + 1;
        for (int64_t row = 1; row <= rows; ++row) {
          for (int c = 0; c < text.sigma(); ++c) {
            Symbol shifted = static_cast<Symbol>(c + 1);
            SaRange got = fm.Extend({0, row}, static_cast<Symbol>(c));
            ASSERT_EQ(got.lo, oracle.c[shifted])
                << "sigma=" << text.sigma() << " two_level=" << two_level
                << " n=" << n << " row=" << row << " c=" << c;
            ASSERT_EQ(got.hi, oracle.c[shifted] + oracle.Occ(shifted, row))
                << "sigma=" << text.sigma() << " two_level=" << two_level
                << " n=" << n << " row=" << row << " c=" << c;
          }
        }
      }
    }
  }
}

TEST(FmIndexPacked, ExtendAllMatchesPerSymbolExtend) {
  SequenceGenerator gen(2025);
  for (const Alphabet* alphabet : {&Alphabet::Dna(), &Alphabet::Protein()}) {
    for (bool use_wavelet : {false, true}) {
      FmIndexOptions options;
      options.use_wavelet = use_wavelet;
      Sequence text = gen.Random(700, *alphabet);
      FmIndex fm(text, options);
      const int sigma = text.sigma();
      std::vector<SaRange> batched(static_cast<size_t>(sigma));
      auto check = [&](const SaRange& range) {
        fm.ExtendAll(range, batched.data());
        for (int c = 0; c < sigma; ++c) {
          ASSERT_EQ(batched[static_cast<size_t>(c)],
                    fm.Extend(range, static_cast<Symbol>(c)))
              << "range [" << range.lo << "," << range.hi << ") c=" << c;
        }
      };
      check(fm.FullRange());
      check(SaRange{0, 0});  // empty
      const int64_t rows = fm.FullRange().hi;
      for (int trial = 0; trial < 300; ++trial) {
        int64_t lo = static_cast<int64_t>(
            gen.rng().Below(static_cast<uint64_t>(rows)));
        int64_t hi = lo + 1 +
                     static_cast<int64_t>(gen.rng().Below(
                         static_cast<uint64_t>(rows - lo)));
        check(SaRange{lo, hi});
      }
      // Ranges reached by actual backward search (including singletons).
      for (int trial = 0; trial < 50; ++trial) {
        SaRange range = fm.FullRange();
        while (!range.Empty()) {
          check(range);
          range = fm.Extend(
              range, static_cast<Symbol>(gen.rng().Below(
                         static_cast<uint64_t>(sigma))));
        }
      }
    }
  }
}

TEST(FmIndexPacked, SaveLoadRoundTripsNewFormat) {
  SequenceGenerator gen(2026);
  for (const Alphabet* alphabet : {&Alphabet::Dna(), &Alphabet::Protein()}) {
   for (bool two_level : {true, false}) {
    FmIndexOptions options;
    options.two_level_occ = two_level;
    Sequence text = gen.Random(1500, *alphabet);
    FmIndex original(text, options);
    std::stringstream ss;
    ASSERT_TRUE(original.Save(ss));
    FmIndex loaded;
    ASSERT_TRUE(loaded.Load(ss));
    EXPECT_EQ(loaded.text_size(), original.text_size());
    EXPECT_EQ(loaded.sigma(), original.sigma());
    EXPECT_EQ(loaded.SizeBytes().Total(), original.SizeBytes().Total());
    const int sigma = text.sigma();
    std::vector<SaRange> a(static_cast<size_t>(sigma));
    std::vector<SaRange> b(static_cast<size_t>(sigma));
    SaRange range = original.FullRange();
    while (!range.Empty()) {
      original.ExtendAll(range, a.data());
      loaded.ExtendAll(range, b.data());
      ASSERT_EQ(a, b);
      ASSERT_EQ(original.Locate(range), loaded.Locate(range));
      range = original.Extend(
          range,
          static_cast<Symbol>(gen.rng().Below(static_cast<uint64_t>(sigma))));
    }
   }
  }
}

TEST(FmIndexPacked, EveryTruncationOfThePayloadIsRejected) {
  // Regression for the pre-packed-format validation hole: a truncated file
  // could pass Load (sizes unchecked) and crash later inside Occ. Every
  // strict prefix of a valid payload must now be rejected cleanly — the
  // protein payload includes the two-level absolute-row table, so its
  // truncations cover the new vector too.
  SequenceGenerator gen(2027);
  for (const Alphabet* alphabet : {&Alphabet::Dna(), &Alphabet::Protein()}) {
    Sequence text = gen.Random(200, *alphabet);
    FmIndex fm(text);
    std::stringstream ss;
    ASSERT_TRUE(fm.Save(ss));
    const std::string payload = ss.str();
    for (size_t len = 0; len < payload.size(); ++len) {
      std::stringstream truncated(payload.substr(0, len));
      FmIndex loaded;
      ASSERT_FALSE(loaded.Load(truncated))
          << "sigma=" << text.sigma() << " prefix length " << len;
    }
    std::stringstream intact(payload);
    FmIndex loaded;
    EXPECT_TRUE(loaded.Load(intact));
  }
}

TEST(FmIndexPacked, FailedLoadLeavesIndexUsable) {
  SequenceGenerator gen(2028);
  Sequence text = gen.Random(300, Alphabet::Dna());
  FmIndex fm(text);
  std::stringstream good;
  ASSERT_TRUE(fm.Save(good));
  FmIndex loaded;
  ASSERT_TRUE(loaded.Load(good));
  // A rejected payload must not clobber the previously loaded state.
  std::stringstream bad("garbage that is much too short");
  ASSERT_FALSE(loaded.Load(bad));
  Sequence pat = text.Substr(40, 6);
  EXPECT_EQ(loaded.Find(pat.symbols()), fm.Find(pat.symbols()));
}

TEST(FmIndexPacked, OldFormatMagicIsRejected) {
  // Files written by the retired byte-BWT format ("ALAEF1M") must fail
  // Load with `false`, not be misparsed as packed blocks.
  constexpr uint64_t kOldMagic = 0x414C414546314D00ULL;
  std::stringstream ss;
  ASSERT_TRUE(PutU64(ss, kOldMagic));
  for (int i = 0; i < 64; ++i) ASSERT_TRUE(PutU64(ss, 7));
  FmIndex loaded;
  EXPECT_FALSE(loaded.Load(ss));
}

TEST(FmIndexPacked, LegacySingleLevelPayloadLoadsBitExact) {
  // Pre-two-level files ("ALAEF2M": no layout-flags word, no absolute-row
  // table) must keep loading into the single-level layout and answer
  // exactly like the index that wrote them. Synthesised here from a v3
  // single-level save: swap the magic and drop the layout word — the rest
  // of the v2 payload is byte-identical.
  constexpr uint64_t kV2Magic = 0x414C414546324D00ULL;
  SequenceGenerator gen(2033);
  for (const Alphabet* alphabet : {&Alphabet::Dna(), &Alphabet::Protein()}) {
    FmIndexOptions options;
    options.two_level_occ = false;
    Sequence text = gen.Random(900, *alphabet);
    FmIndex original(text, options);
    std::stringstream ss;
    ASSERT_TRUE(original.Save(ss));
    std::string v2 = ss.str();
    for (int b = 0; b < 8; ++b) {
      v2[static_cast<size_t>(b)] = static_cast<char>(kV2Magic >> (b * 8));
    }
    v2.erase(6 * 8, 8);  // layout-flags word is v3-only
    std::stringstream legacy(v2);
    FmIndex loaded;
    ASSERT_TRUE(loaded.Load(legacy)) << "sigma=" << text.sigma();
    EXPECT_EQ(loaded.text_size(), original.text_size());
    const int sigma = text.sigma();
    std::vector<SaRange> a(static_cast<size_t>(sigma));
    std::vector<SaRange> b(static_cast<size_t>(sigma));
    SaRange range = original.FullRange();
    while (!range.Empty()) {
      original.ExtendAll(range, a.data());
      loaded.ExtendAll(range, b.data());
      ASSERT_EQ(a, b);
      ASSERT_EQ(original.Locate(range), loaded.Locate(range));
      range = original.Extend(
          range,
          static_cast<Symbol>(gen.rng().Below(static_cast<uint64_t>(sigma))));
    }
  }
}

TEST(FmIndexPacked, CorruptedHeaderFieldsAreRejected) {
  SequenceGenerator gen(2029);
  Sequence text = gen.Random(250, Alphabet::Dna());
  FmIndex fm(text);
  std::stringstream ss;
  ASSERT_TRUE(fm.Save(ss));
  const std::string payload = ss.str();
  // Header layout: magic, n, sigma, rate, packing, sentinel, layout flags —
  // 8 bytes each.
  auto with_u64 = [&](size_t field, uint64_t value) {
    std::string tampered = payload;
    for (int b = 0; b < 8; ++b) {
      tampered[field * 8 + static_cast<size_t>(b)] =
          static_cast<char>(value >> (b * 8));
    }
    return tampered;
  };
  const uint64_t bad_values[][2] = {
      {1, 1ULL << 40},  // n too large for u32 checkpoints
      {2, 0},           // sigma of zero
      {2, 20},          // sigma/packing mismatch (protein sigma, 2-bit data)
      {3, 0},           // zero sample rate
      {4, 2},           // packing byte for a DNA index
      {5, 1ULL << 20},  // sentinel row out of range
      {6, 1},           // two-level flag on a sigma<=4 index
      {6, 2},           // reserved layout-flag bit
  };
  for (const auto& [field, value] : bad_values) {
    std::stringstream bad(with_u64(field, value));
    FmIndex loaded;
    EXPECT_FALSE(loaded.Load(bad)) << "field " << field << " := " << value;
  }
}

TEST(FmIndexPacked, CorruptedOccBlocksAreRejected) {
  // Mid-file corruption must not pass Load: the per-block walk has to
  // catch both a tampered checkpoint and a tampered data word (which the
  // final-totals cross-check alone would miss).
  SequenceGenerator gen(2031);
  for (const Alphabet* alphabet : {&Alphabet::Dna(), &Alphabet::Protein()}) {
    Sequence text = gen.Random(1000, *alphabet);
    FmIndex fm(text);
    std::stringstream ss;
    ASSERT_TRUE(fm.Save(ss));
    const std::string payload = ss.str();
    // Layout: 7 u64 header fields, then c_ (u64 size + sigma+2 values),
    // then the occ_data_ vector (u64 size + blocks of cp+data words).
    // Protein defaults to the two-level byte layout: 3 delta words + 8
    // data words per block; DNA keeps the single-cache-line 2-bit block.
    const size_t c_entries = static_cast<size_t>(text.sigma()) + 2;
    const size_t occ_first_block = 7 * 8 + (8 + c_entries * 8) + 8;
    const size_t block_bytes = text.sigma() <= 4 ? 8 * 8 : 11 * 8;
    const size_t cp_bytes = text.sigma() <= 4 ? 2 * 8 : 3 * 8;
    // Bit-flip block 1's first checkpoint word (a u8 delta in the two-level
    // layout), then block 1's first data word (block 1 is fully populated
    // at n=1000 for both geometries).
    for (size_t offset : {occ_first_block + block_bytes,
                          occ_first_block + block_bytes + cp_bytes}) {
      std::string tampered = payload;
      ASSERT_LT(offset, tampered.size());
      tampered[offset] = static_cast<char>(tampered[offset] ^ 0x04);
      std::stringstream bad(tampered);
      FmIndex loaded;
      EXPECT_FALSE(loaded.Load(bad))
          << "sigma=" << text.sigma() << " offset=" << offset;
    }
  }
}

// Wavelet mode serialises too now (the sharded corpus persists any index
// mode); a wavelet payload must round-trip and answer like the original.
TEST(FmIndexPacked, WaveletModeSavesAndRoundTrips) {
  SequenceGenerator gen(2030);
  FmIndexOptions options;
  options.use_wavelet = true;
  Sequence text = gen.Random(400, Alphabet::Dna());
  FmIndex fm(text, options);
  std::stringstream ss;
  ASSERT_TRUE(fm.Save(ss));
  FmIndex loaded;
  ASSERT_TRUE(loaded.Load(ss));
  for (int p = 0; p < 10; ++p) {
    int64_t at = static_cast<int64_t>(gen.rng().Below(text.size() - 5));
    Sequence pat = text.Substr(static_cast<size_t>(at), 5);
    SaRange a = fm.Find(pat.symbols());
    ASSERT_EQ(a, loaded.Find(pat.symbols()));
    EXPECT_EQ(fm.Locate(a), loaded.Locate(a));
  }
}

}  // namespace
}  // namespace alae
