#include "src/net/server.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/net/client.h"
#include "src/service/service.h"
#include "src/sim/generator.h"
#include "src/sim/workload.h"

namespace alae {
namespace net {
namespace {

using service::QueryScheduler;
using service::SchedulerOptions;
using service::ShardedCorpus;
using service::ShardedCorpusOptions;

std::unique_ptr<ShardedCorpus> MustBuild(Sequence text,
                                         ShardedCorpusOptions options) {
  auto corpus = ShardedCorpus::Build(std::move(text), options);
  EXPECT_TRUE(corpus.ok()) << corpus.status().ToString();
  return std::move(corpus).value();
}

bool WaitUntil(const std::function<bool()>& pred, int timeout_ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

// Small corpus every fast test shares: several shards, BASIC-compatible.
struct SmallRig {
  Workload workload;
  std::unique_ptr<ShardedCorpus> corpus;
  std::unique_ptr<QueryScheduler> scheduler;
  std::unique_ptr<NetServer> server;

  explicit SmallRig(NetServerOptions net_options = {},
                    SchedulerOptions sched_options = {.threads = 2}) {
    WorkloadSpec spec;
    spec.text_length = 3'000;
    spec.query_length = 48;
    spec.num_queries = 3;
    spec.homolog_fraction = 1.0;
    spec.divergence = 0.12;
    spec.seed = 31;
    workload = BuildWorkload(spec);

    ShardedCorpusOptions options;
    options.shard_size = 900;
    options.overlap = 200;
    corpus = MustBuild(workload.text, options);
    scheduler = std::make_unique<QueryScheduler>(*corpus, sched_options);
    server = std::make_unique<NetServer>(scheduler.get(), net_options);
    api::Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }

  ~SmallRig() {
    server->Stop();
    scheduler->Shutdown();
  }

  WireRequest Wire(uint32_t id, size_t query_index,
                   int32_t threshold = 18) const {
    WireRequest request;
    request.request_id = id;
    request.backend = "alae";
    request.threshold = threshold;
    request.query = workload.queries[query_index].ToString();
    return request;
  }

  std::vector<AlignmentHit> Direct(const std::string& backend,
                                   size_t query_index,
                                   int32_t threshold = 18) const {
    api::SearchRequest request;
    request.query = workload.queries[query_index];
    request.threshold = threshold;
    api::StatusOr<api::SearchResponse> response =
        scheduler->Search(backend, request);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    return response.ok() ? response->hits : std::vector<AlignmentHit>{};
  }
};

// The headline end-to-end check: for every backend, the hits streamed over
// a real socket are bit-exact against QueryScheduler::Search called
// directly.
TEST(NetServer, SocketAnswersMatchDirectSchedulerAllBackends) {
  SmallRig rig;
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", rig.server->port()).ok());

  uint32_t next_id = 1;
  for (const std::string& backend : api::AlignerRegistry::BuiltinNames()) {
    for (size_t q = 0; q < rig.workload.queries.size(); ++q) {
      WireRequest request = rig.Wire(next_id++, q);
      request.backend = backend;
      api::StatusOr<NetClient::Response> response = client.Call(request);
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      ASSERT_EQ(response->status.code, WireCode::kOk)
          << backend << ": " << response->status.message;
      EXPECT_EQ(response->hits, rig.Direct(backend, q)) << backend;
      EXPECT_EQ(response->status.stats.hits, response->hits.size());
    }
  }
}

// Same bit-exactness through the portable poll() event loop.
TEST(NetServer, ForcePollBackendServesIdentically) {
  NetServerOptions options;
  options.force_poll = true;
  SmallRig rig(options);
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", rig.server->port()).ok());
  for (size_t q = 0; q < rig.workload.queries.size(); ++q) {
    api::StatusOr<NetClient::Response> response = client.Call(rig.Wire(q + 1, q));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response->status.code, WireCode::kOk);
    EXPECT_EQ(response->hits, rig.Direct("alae", q));
  }
}

// Pipelined admission: many requests sent before any response is read,
// responses demultiplexed by id and awaited out of order.
TEST(NetServer, PipelinedRequestsOnOneConnection) {
  SmallRig rig;
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", rig.server->port()).ok());

  const size_t kRequests = 9;
  for (size_t i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(
        client.Send(rig.Wire(static_cast<uint32_t>(i + 1), i % 3)).ok());
  }
  // Await newest-first: earlier responses get filed and found later.
  for (size_t i = kRequests; i > 0; --i) {
    api::StatusOr<NetClient::Response> response =
        client.Await(static_cast<uint32_t>(i));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response->status.code, WireCode::kOk)
        << response->status.message;
    EXPECT_EQ(response->hits, rig.Direct("alae", (i - 1) % 3)) << "id " << i;
  }
}

// N concurrent clients, each its own connection and thread, all answered
// bit-exactly.
TEST(NetServer, ConcurrentClientsAreServedCorrectly) {
  SmallRig rig;
  const std::vector<AlignmentHit> expected[3] = {
      rig.Direct("alae", 0), rig.Direct("alae", 1), rig.Direct("alae", 2)};

  const int kClients = 4;
  const int kPerClient = 6;
  std::vector<std::thread> threads;
  std::vector<int> failures(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      NetClient client;
      if (!client.Connect("127.0.0.1", rig.server->port()).ok()) {
        failures[c] = 100;
        return;
      }
      for (int i = 0; i < kPerClient; ++i) {
        const size_t q = static_cast<size_t>((c + i) % 3);
        api::StatusOr<NetClient::Response> response =
            client.Call(rig.Wire(static_cast<uint32_t>(i + 1), q));
        if (!response.ok() || response->status.code != WireCode::kOk ||
            response->hits != expected[q]) {
          ++failures[c];
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], 0) << "client " << c;
  }
  EXPECT_GE(rig.server->connections_accepted(), 4u);
}

// A request whose alphabet does not match the corpus is rejected cleanly.
TEST(NetServer, AlphabetMismatchIsInvalidArgument) {
  SmallRig rig;
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", rig.server->port()).ok());
  WireRequest request = rig.Wire(1, 0);
  request.alphabet = kAlphabetProtein;
  api::StatusOr<NetClient::Response> response = client.Call(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status.code, WireCode::kInvalidArgument);
  EXPECT_FALSE(response->status.retryable);
}

// Wire-level backpressure: a saturated pipeline bound maps to the
// retryable RESOURCE_EXHAUSTED status (max_pipeline = 0 makes the
// rejection deterministic).
TEST(NetServer, PipelineOverflowIsRetryableResourceExhausted) {
  NetServerOptions options;
  options.max_pipeline = 0;
  SmallRig rig(options);
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", rig.server->port()).ok());
  api::StatusOr<NetClient::Response> response = client.Call(rig.Wire(1, 0));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status.code, WireCode::kResourceExhausted);
  EXPECT_TRUE(response->status.retryable);
}

// Scheduler-level backpressure maps to the same retryable code: a queue
// too small for one query's fan-out sheds every request.
TEST(NetServer, SchedulerQueueExhaustionIsRetryableOnTheWire) {
  SmallRig rig({}, SchedulerOptions{.threads = 1, .queue_capacity = 1});
  ASSERT_GT(rig.corpus->num_shards(), 1u);
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", rig.server->port()).ok());
  api::StatusOr<NetClient::Response> response = client.Call(rig.Wire(1, 0));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status.code, WireCode::kResourceExhausted);
  EXPECT_TRUE(response->status.retryable);
}

// Garbage on the wire: the server answers with one PROTOCOL_ERROR status
// and drops the connection.
TEST(NetServer, GarbageBytesGetProtocolErrorAndClose) {
  SmallRig rig;
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", rig.server->port()).ok());
  const std::string garbage = "GET / HTTP/1.1\r\nHost: wrong-protocol\r\n\r\n";
  ASSERT_GT(::send(client.fd(), garbage.data(), garbage.size(), 0), 0);

  api::StatusOr<NetClient::Response> response = client.Await(0);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status.code, WireCode::kProtocolError);
  EXPECT_EQ(rig.server->protocol_errors(), 1u);

  // The connection is gone: the next read reports EOF (kInternal).
  api::StatusOr<NetClient::Response> after = client.Await(1);
  EXPECT_FALSE(after.ok());
}

// Slow-loris shape: a valid frame dribbled one byte at a time must still
// be served (and must not wedge the event loop for other clients).
TEST(NetServer, SlowLorisPartialWritesAreServed) {
  SmallRig rig;
  NetClient slow;
  ASSERT_TRUE(slow.Connect("127.0.0.1", rig.server->port()).ok());

  std::string bytes;
  AppendRequestFrame(rig.Wire(1, 0), &bytes);
  std::thread dribble([&] {
    for (char c : bytes) {
      ASSERT_EQ(::send(slow.fd(), &c, 1, 0), 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  // A healthy client is served while the slow one dribbles.
  NetClient fast;
  ASSERT_TRUE(fast.Connect("127.0.0.1", rig.server->port()).ok());
  api::StatusOr<NetClient::Response> quick = fast.Call(rig.Wire(5, 1));
  ASSERT_TRUE(quick.ok()) << quick.status().ToString();
  EXPECT_EQ(quick->status.code, WireCode::kOk);

  dribble.join();
  api::StatusOr<NetClient::Response> response = slow.Await(1);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status.code, WireCode::kOk);
  EXPECT_EQ(response->hits, rig.Direct("alae", 0));
}

// Live metrics over the wire: a STATS_REQUEST frame answers with the
// server's registry exposition, and the scrape demultiplexes cleanly with
// a pipelined search in flight on the same connection.
TEST(NetServer, StatsScrapeOverTheWire) {
  SmallRig rig;
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", rig.server->port()).ok());

  // One served request first so the counters being scraped are non-zero.
  api::StatusOr<NetClient::Response> served = client.Call(rig.Wire(1, 0));
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  ASSERT_EQ(served->status.code, WireCode::kOk);

  api::StatusOr<std::string> scrape = client.Scrape(50);
  ASSERT_TRUE(scrape.ok()) << scrape.status().ToString();
  EXPECT_NE(scrape->find("alae_net_requests_completed_total"),
            std::string::npos);
  EXPECT_NE(scrape->find("alae_net_stats_scrapes_total"), std::string::npos);
  EXPECT_NE(scrape->find("alae_scheduler_requests_total{verb=\"search\"}"),
            std::string::npos);
  EXPECT_NE(scrape->find("alae_scheduler_search_seconds_bucket"),
            std::string::npos);

  // Scrape while a search is pipelined: the STATS frame may land between
  // the search's HITS and STATUS frames, and both must still demux.
  ASSERT_TRUE(client.Send(rig.Wire(2, 1)).ok());
  api::StatusOr<std::string> interleaved = client.Scrape(51);
  ASSERT_TRUE(interleaved.ok()) << interleaved.status().ToString();
  EXPECT_NE(interleaved->find("alae_net_bytes_out_total"),
            std::string::npos);
  api::StatusOr<NetClient::Response> pending = client.Await(2);
  ASSERT_TRUE(pending.ok()) << pending.status().ToString();
  EXPECT_EQ(pending->status.code, WireCode::kOk);
  EXPECT_EQ(pending->hits, rig.Direct("alae", 1));
}

// ---------------------------------------------------------------------------
// Cancellation end-to-end: these need a query slow enough to still be
// running when the cancel lands, so they use a larger corpus and a long
// low-identity query with no early exit.
// ---------------------------------------------------------------------------

struct SlowRig {
  Workload workload;
  std::unique_ptr<ShardedCorpus> corpus;
  std::unique_ptr<QueryScheduler> scheduler;
  std::unique_ptr<NetServer> server;

  SlowRig() {
    WorkloadSpec spec;
    spec.text_length = 60'000;
    spec.query_length = 300;
    spec.num_queries = 1;
    spec.homolog_fraction = 0.0;  // no planted match: full-scan cost
    spec.seed = 99;
    workload = BuildWorkload(spec);

    ShardedCorpusOptions options;
    options.shard_size = 15'000;
    options.overlap = 600;
    corpus = MustBuild(workload.text, options);
    scheduler =
        std::make_unique<QueryScheduler>(*corpus, SchedulerOptions{.threads = 1});
    server = std::make_unique<NetServer>(scheduler.get(), NetServerOptions{});
    api::Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }

  ~SlowRig() {
    server->Stop();
    scheduler->Shutdown();
  }

  // Smith-Waterman over every cell of a 60k corpus with a 300-char query:
  // tens of milliseconds at least, with cancellation polls throughout.
  WireRequest SlowQuery(uint32_t id) const {
    WireRequest request;
    request.request_id = id;
    request.backend = "sw";
    request.threshold = 500;  // unreachable: no hits, no short-circuit
    request.query = workload.queries[0].ToString();
    return request;
  }
};

// A per-request deadline expires mid-run and the server reports
// DEADLINE_EXCEEDED — the engines stopped, they did not run to completion.
TEST(NetServerCancel, PerRequestDeadlineCancelsServerWork) {
  SlowRig rig;
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", rig.server->port()).ok());

  WireRequest request = rig.SlowQuery(1);
  request.deadline_ms = 10;
  api::StatusOr<NetClient::Response> response = client.Call(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status.code, WireCode::kDeadlineExceeded)
      << response->status.message;
  EXPECT_EQ(rig.server->requests_cancelled(), 1u);

  // The same query without a deadline completes fine afterwards — the
  // cancellation left no residue.
  api::StatusOr<NetClient::Response> clean = client.Call(rig.SlowQuery(2));
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_EQ(clean->status.code, WireCode::kOk);
}

// An explicit CANCEL frame aborts an in-flight request.
TEST(NetServerCancel, CancelFrameAbortsInFlightRequest) {
  SlowRig rig;
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", rig.server->port()).ok());

  ASSERT_TRUE(client.Send(rig.SlowQuery(7)).ok());
  // Let the query get admitted (and very likely started) first.
  ASSERT_TRUE(WaitUntil([&] { return rig.server->requests_admitted() >= 1; }));
  ASSERT_TRUE(client.SendCancel(7).ok());

  api::StatusOr<NetClient::Response> response = client.Await(7);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status.code, WireCode::kCancelled)
      << response->status.message;
  EXPECT_GE(rig.server->requests_cancelled(), 1u);
}

// The acceptance-criteria observable: a client that disconnects mid-query
// has its server-side work cancelled (the in-flight token fires).
TEST(NetServerCancel, ClientDisconnectCancelsServerSideWork) {
  SlowRig rig;
  auto client = std::make_unique<NetClient>();
  ASSERT_TRUE(client->Connect("127.0.0.1", rig.server->port()).ok());

  ASSERT_TRUE(client->Send(rig.SlowQuery(3)).ok());
  ASSERT_TRUE(WaitUntil([&] { return rig.server->requests_admitted() >= 1; }));
  client.reset();  // closes the socket with the query in flight

  EXPECT_TRUE(WaitUntil([&] { return rig.server->disconnect_cancels() >= 1; }))
      << "server never cancelled the orphaned query";
  // The worker observed the cancel and completed the request server-side.
  EXPECT_TRUE(
      WaitUntil([&] { return rig.server->requests_completed() >= 1; }));
}

}  // namespace
}  // namespace net
}  // namespace alae
