#include "src/align/dp.h"

#include <gtest/gtest.h>

namespace alae {
namespace {

// Pins the worked example of the paper's Fig 1: X=GCTA against P=GCTAG
// under <1,-3,-5,-2>.
TEST(DpMatrix, PaperFig1Values) {
  Sequence x = Sequence::FromString("GCTA", Alphabet::Dna());
  Sequence p = Sequence::FromString("GCTAG", Alphabet::Dna());
  DpMatrix dp = ComputeMatrix(x.symbols(), p.symbols(), ScoringScheme::Default());

  // Row 0 and column 0 initial conditions (§2.2).
  for (int64_t j = 0; j <= 5; ++j) EXPECT_EQ(dp.M(0, j), 0);
  EXPECT_EQ(dp.M(1, 0), -7);
  EXPECT_EQ(dp.M(2, 0), -9);
  EXPECT_EQ(dp.M(3, 0), -11);
  EXPECT_EQ(dp.M(4, 0), -13);

  // The bold M values of Fig 1, row by row.
  const int32_t expected[4][5] = {
      {1, -3, -3, -3, 1},
      {-6, 2, -5, -6, -6},
      {-8, -5, 3, -4, -6},
      {-10, -7, -4, 4, -3},
  };
  for (int64_t i = 1; i <= 4; ++i) {
    for (int64_t j = 1; j <= 5; ++j) {
      EXPECT_EQ(dp.M(i, j), expected[i - 1][j - 1])
          << "M(" << i << "," << j << ")";
    }
  }

  // Spot-check the worked Ga/Gb recurrence from §2.2: Ga(4,3) = -4 and
  // Gb(4,3) = -14, giving M(4,3) = max(-5-3, -4, -14) = -4.
  EXPECT_EQ(dp.Ga(4, 3), -4);
  EXPECT_EQ(dp.Gb(4, 3), -14);
}

TEST(DpMatrix, SimilarityExampleFromSection2) {
  // sim(AAACG, AACCG) = 1*4 + (-3) = 1 under the default scheme (§2.1) —
  // aligning the full strings with one substitution. ComputeMatrix's
  // M(i, j) lets any query substring end at j, so check the global-ish
  // cell M(5, 5) >= 1 and that the best all-of-X alignment value is 1.
  Sequence x = Sequence::FromString("AAACG", Alphabet::Dna());
  Sequence p = Sequence::FromString("AACCG", Alphabet::Dna());
  DpMatrix dp = ComputeMatrix(x.symbols(), p.symbols(), ScoringScheme::Default());
  EXPECT_EQ(dp.M(5, 5), 1);
}

TEST(DpMatrix, MatchRunScoresLinearly) {
  Sequence x = Sequence::FromString("ACGT", Alphabet::Dna());
  DpMatrix dp = ComputeMatrix(x.symbols(), x.symbols(), ScoringScheme::Default());
  for (int64_t i = 1; i <= 4; ++i) EXPECT_EQ(dp.M(i, i), i);
}

TEST(BestLocalScore, SymmetricAndMatchesKnownCases) {
  ScoringScheme s = ScoringScheme::Default();
  Sequence a = Sequence::FromString("ACGTACGT", Alphabet::Dna());
  Sequence b = Sequence::FromString("TTACGTAA", Alphabet::Dna());
  // Best shared substring: ACGTA (score 5).
  EXPECT_EQ(BestLocalScore(a, b, s), 5);
  EXPECT_EQ(BestLocalScore(b, a, s), 5);
}

TEST(BestLocalScore, GapBeatsUngappedFlank) {
  // a = 6 A's, TT, 6 A's vs b = 12 A's under <1,-3,-2,-1>: bridging the TT
  // with a 2-gap scores 12 + (sg + 2*ss) = 12 - 4 = 8, beating the best
  // ungapped flank alignment (6).
  ScoringScheme s{1, -3, -2, -1};
  Sequence a = Sequence::FromString("AAAAAATTAAAAAA", Alphabet::Dna());
  Sequence b = Sequence::FromString("AAAAAAAAAAAA", Alphabet::Dna());
  EXPECT_EQ(BestLocalScore(a, b, s), 8);
}

TEST(BestLocalScore, NoSimilarityGivesZero) {
  ScoringScheme s = ScoringScheme::Default();
  Sequence a = Sequence::FromString("AAAA", Alphabet::Dna());
  Sequence b = Sequence::FromString("CCCC", Alphabet::Dna());
  EXPECT_EQ(BestLocalScore(a, b, s), 0);
}

TEST(BestLocalScore, EmptyInputs) {
  ScoringScheme s = ScoringScheme::Default();
  Sequence a;
  Sequence b = Sequence::FromString("ACGT", Alphabet::Dna());
  EXPECT_EQ(BestLocalScore(a, b, s), 0);
  EXPECT_EQ(BestLocalScore(b, a, s), 0);
}

}  // namespace
}  // namespace alae
