#include "src/io/sequence.h"

#include <gtest/gtest.h>

namespace alae {
namespace {

TEST(Sequence, FromStringAndBack) {
  Sequence s = Sequence::FromString("ACGTACGT", Alphabet::Dna());
  EXPECT_EQ(s.size(), 8u);
  EXPECT_EQ(s.ToString(), "ACGTACGT");
  EXPECT_EQ(s[0], 0);
  EXPECT_EQ(s[3], 3);
}

TEST(Sequence, Substr) {
  Sequence s = Sequence::FromString("ACGTACGT", Alphabet::Dna());
  EXPECT_EQ(s.Substr(2, 4).ToString(), "GTAC");
  EXPECT_EQ(s.Substr(6, 10).ToString(), "GT");   // clamped
  EXPECT_EQ(s.Substr(20, 5).size(), 0u);         // past the end
}

TEST(Sequence, Reversed) {
  Sequence s = Sequence::FromString("ACGT", Alphabet::Dna());
  EXPECT_EQ(s.Reversed().ToString(), "TGCA");
  // Reversal is an involution.
  EXPECT_EQ(s.Reversed().Reversed(), s);
}

TEST(Sequence, AppendConcatenatesRecords) {
  Sequence a = Sequence::FromString("AAA", Alphabet::Dna());
  Sequence b = Sequence::FromString("TTT", Alphabet::Dna());
  a.Append(b);
  EXPECT_EQ(a.ToString(), "AAATTT");
}

TEST(Sequence, EmptySequence) {
  Sequence s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.Reversed().size(), 0u);
  EXPECT_EQ(s.Substr(0, 5).size(), 0u);
}

TEST(PackedDnaStore, RoundTrip) {
  Sequence s = Sequence::FromString("ACGTACGTTTGCA", Alphabet::Dna());
  PackedDnaStore packed(s.symbols());
  ASSERT_EQ(packed.size(), s.size());
  for (size_t i = 0; i < s.size(); ++i) EXPECT_EQ(packed.Get(i), s[i]);
  // 13 symbols fit one 64-bit word.
  EXPECT_EQ(packed.SizeBytes(), sizeof(uint64_t));
}

TEST(PackedDnaStore, CrossesWordBoundaries) {
  std::string text;
  for (int i = 0; i < 100; ++i) text += "ACGT"[i % 4];
  Sequence s = Sequence::FromString(text, Alphabet::Dna());
  PackedDnaStore packed(s.symbols());
  for (size_t i = 0; i < s.size(); ++i) EXPECT_EQ(packed.Get(i), s[i]);
}

}  // namespace
}  // namespace alae
