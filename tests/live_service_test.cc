// Concurrency hammer for the live corpus: a mutator thread appends,
// deletes and compacts (with background compaction also enabled) while
// client threads query every backend through a shared scheduler. Run
// under ThreadSanitizer in CI (the `tsan` job, -R "...|live"); in any
// build, racing responses must be well-formed (Ok or clean backpressure)
// and the quiesced corpus must answer bit-exactly like a from-scratch
// rebuild of the surviving documents.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/service/service.h"
#include "src/sim/generator.h"

namespace alae {
namespace service {
namespace {

using api::SearchRequest;
using api::SearchResponse;

SearchRequest MakeRequest(const Sequence& query, int32_t threshold) {
  SearchRequest request;
  request.query = query;
  request.threshold = threshold;
  return request;
}

TEST(LiveServiceConcurrency, MutateWhileQueryHammer) {
  SequenceGenerator gen(77);
  LiveCorpusOptions options;
  options.base.shard_size = 500;
  options.base.overlap = 190;
  options.compact_after_deltas = 3;
  options.background_compaction = true;

  // The mutator's private model: id -> body, alive. Only the mutator
  // thread writes it; the main thread reads it after joining.
  struct ModelDoc {
    uint64_t id;
    Sequence body;
    bool alive;
  };
  std::vector<ModelDoc> model;

  Sequence initial({}, Alphabet::Dna());
  std::vector<DocumentSpan> spans;
  for (uint64_t d = 0; d < 4; ++d) {
    Sequence body =
        gen.TextWithRepeats(300, Alphabet::Dna(), {{60, 3, 0.1}});
    const int64_t begin = static_cast<int64_t>(initial.size());
    initial.Append(body);
    spans.push_back(
        DocumentSpan{d, begin, static_cast<int64_t>(initial.size())});
    model.push_back(ModelDoc{d, std::move(body), true});
  }
  auto built = LiveCorpus::Build(initial, spans, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  std::unique_ptr<LiveCorpus> live = std::move(built).value();

  QueryScheduler scheduler(*live, {.threads = 3,
                                   .cache_capacity = 16,
                                   .shard_cache_capacity = 128});
  std::vector<Sequence> queries;
  for (int q = 0; q < 3; ++q) {
    queries.push_back(gen.HomologousQuery(initial, 36, 0.9, 0.08, 0.03));
  }
  const std::vector<std::string>& backends =
      api::AlignerRegistry::BuiltinNames();

  std::atomic<bool> done{false};
  std::atomic<int> bad_status{0};
  std::atomic<int> served{0};
  std::atomic<int> shed{0};

  std::thread mutator([&] {
    SequenceGenerator mgen(78);
    for (int op = 0; op < 24; ++op) {
      const uint64_t roll = mgen.rng().Below(10);
      if (roll < 6) {
        Sequence doc = mgen.Random(mgen.rng().Range(60, 150), Alphabet::Dna());
        api::StatusOr<uint64_t> id = live->AppendDocument(doc);
        ASSERT_TRUE(id.ok()) << id.status().ToString();
        model.push_back(ModelDoc{*id, std::move(doc), true});
      } else if (roll < 9) {
        std::vector<size_t> alive;
        for (size_t i = 0; i < model.size(); ++i) {
          if (model[i].alive) alive.push_back(i);
        }
        if (alive.size() > 1) {
          const size_t victim = alive[mgen.rng().Below(alive.size())];
          ASSERT_TRUE(live->DeleteDocument(model[victim].id).ok());
          model[victim].alive = false;
        }
      } else {
        api::Status status = live->Compact();
        ASSERT_TRUE(status.ok()) << status.ToString();
      }
      std::this_thread::yield();
    }
    done.store(true);
  });

  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      int it = 0;
      while (!done.load() || it < 10) {
        const std::string& backend = backends[(c + it) % backends.size()];
        const Sequence& query = queries[it % queries.size()];
        api::StatusOr<SearchResponse> response =
            scheduler.Search(backend, MakeRequest(query, 20));
        if (response.ok()) {
          ++served;
        } else if (response.status().code() ==
                   api::StatusCode::kResourceExhausted) {
          ++shed;
        } else {
          ++bad_status;
          ADD_FAILURE() << backend << ": " << response.status().ToString();
        }
        ++it;
        if (it > 400) break;  // liveness bound under very slow sanitizers
      }
    });
  }
  mutator.join();
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(bad_status.load(), 0);
  EXPECT_GT(served.load(), 0);

  // Quiesce: one explicit compaction folds whatever the background worker
  // has not; any still-pending trigger then no-ops without changing state.
  ASSERT_TRUE(live->Compact().ok());
  Sequence final_text({}, Alphabet::Dna());
  for (const ModelDoc& d : model) {
    if (d.alive) final_text.Append(d.body);
  }
  ASSERT_EQ(live->text_size(), static_cast<int64_t>(final_text.size()));
  auto reference = ShardedCorpus::Build(final_text, options.base);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  QueryScheduler ref_scheduler(**reference, {.threads = 2});
  for (const std::string& backend : backends) {
    for (const Sequence& query : queries) {
      api::StatusOr<SearchResponse> live_response =
          scheduler.Search(backend, MakeRequest(query, 20));
      api::StatusOr<SearchResponse> ref_response =
          ref_scheduler.Search(backend, MakeRequest(query, 20));
      ASSERT_TRUE(live_response.ok()) << live_response.status().ToString();
      ASSERT_TRUE(ref_response.ok()) << ref_response.status().ToString();
      EXPECT_EQ(live_response->hits, ref_response->hits)
          << backend << " diverged after quiescing";
    }
  }
}

// The shard-local fragment cache must survive mutations: after an append
// bumps the live epoch (killing response-cache entries), the unchanged
// base shards' fragments are reused and only the new delta slice runs.
TEST(LiveServiceConcurrency, FragmentCacheSurvivesAppendsAndEpochBumps) {
  SequenceGenerator gen(79);
  LiveCorpusOptions options;
  options.base.shard_size = 500;
  options.base.overlap = 190;
  options.compact_after_deltas = 0;
  options.background_compaction = false;
  auto built = LiveCorpus::Build(
      gen.TextWithRepeats(1'400, Alphabet::Dna(), {{70, 4, 0.1}}), options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  std::unique_ptr<LiveCorpus> live = std::move(built).value();

  // Response cache off so repeats exercise the fragment tier.
  QueryScheduler scheduler(*live, {.threads = 2,
                                   .cache_capacity = 0,
                                   .shard_cache_capacity = 64});
  Sequence query =
      gen.HomologousQuery(live->base()->text(), 36, 0.9, 0.08, 0.03);
  SearchRequest request = MakeRequest(query, 20);

  api::StatusOr<SearchResponse> first = scheduler.Search("sw", request);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->stats.shard_cache_hits, 0u);
  EXPECT_GT(first->stats.shard_cache_misses, 0u);

  ASSERT_TRUE(
      live->AppendDocument(gen.Random(120, Alphabet::Dna())).ok());
  api::StatusOr<SearchResponse> second = scheduler.Search("sw", request);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_GT(second->stats.shard_cache_hits, 0u)
      << "base-shard fragments were not reused across the epoch bump";
  EXPECT_EQ(second->stats.shard_cache_misses, 1u)
      << "only the new delta slice should have run";

  // The fused ALAE path reuses fragments all-or-nothing per snapshot.
  api::StatusOr<SearchResponse> fused_cold = scheduler.Search("alae", request);
  ASSERT_TRUE(fused_cold.ok()) << fused_cold.status().ToString();
  api::StatusOr<SearchResponse> fused_warm = scheduler.Search("alae", request);
  ASSERT_TRUE(fused_warm.ok()) << fused_warm.status().ToString();
  EXPECT_GT(fused_warm->stats.shard_cache_hits, 0u);
  EXPECT_EQ(fused_warm->hits, fused_cold->hits);

  // A compaction replaces the base: its fragments are dead by key, so the
  // next run misses — and repopulates under the new content identity.
  ASSERT_TRUE(live->Compact().ok());
  api::StatusOr<SearchResponse> after = scheduler.Search("sw", request);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->stats.shard_cache_hits, 0u);
  EXPECT_GT(after->stats.shard_cache_misses, 0u);
}

}  // namespace
}  // namespace service
}  // namespace alae
