#include "src/api/status.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace alae {
namespace api {
namespace {

TEST(Status, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  Status invalid = Status::InvalidArgument("query is empty");
  EXPECT_FALSE(invalid.ok());
  EXPECT_EQ(invalid.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(invalid.message(), "query is empty");
  EXPECT_EQ(invalid.ToString(), "INVALID_ARGUMENT: query is empty");

  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(Status, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::InvalidArgument("a"), Status::InvalidArgument("a"));
  EXPECT_FALSE(Status::InvalidArgument("a") == Status::InvalidArgument("b"));
  EXPECT_FALSE(Status::InvalidArgument("a") == Status::NotFound("a"));
}

TEST(StatusCodeName, CoversAllCodes) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kInvalidArgument), "INVALID_ARGUMENT");
  EXPECT_EQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_EQ(StatusCodeName(StatusCode::kFailedPrecondition),
            "FAILED_PRECONDITION");
  EXPECT_EQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
  EXPECT_EQ(StatusCodeName(StatusCode::kResourceExhausted),
            "RESOURCE_EXHAUSTED");
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOr, HoldsStatus) {
  StatusOr<int> result(Status::NotFound("no such backend"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.status().message(), "no such backend");
}

TEST(StatusOr, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> result(std::make_unique<int>(7));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> taken = std::move(result).value();
  EXPECT_EQ(*taken, 7);
}

TEST(StatusOr, ArrowOperator) {
  StatusOr<std::vector<int>> result(std::vector<int>{1, 2, 3});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 3u);
}

}  // namespace
}  // namespace api
}  // namespace alae
