#include "src/baseline/basic.h"

#include <gtest/gtest.h>

#include "src/baseline/smith_waterman.h"
#include "src/sim/generator.h"

namespace alae {
namespace {

TEST(BasicAligner, ReportsStartPositions) {
  // Text with a known duplicated region; BASIC records A(i,j).pos.
  Sequence text = Sequence::FromString("GCTAGCTA", Alphabet::Dna());
  Sequence query = Sequence::FromString("GCTAG", Alphabet::Dna());
  ResultCollector rc =
      BasicAligner::Run(text, query, ScoringScheme::Default(), 4);
  bool found_first = false;
  for (const AlignmentHit& hit : rc.Sorted()) {
    if (hit.text_end == 3 && hit.query_end == 3) {
      EXPECT_EQ(hit.score, 4);
      EXPECT_EQ(hit.text_start, 0);
      found_first = true;
    }
  }
  EXPECT_TRUE(found_first);
}

TEST(BasicAligner, DuplicateSubstringsShareOneComputation) {
  // Both GCTA occurrences must be reported even though the suffix trie
  // aligns the shared path once (Algorithm 1 lines 6-10).
  Sequence text = Sequence::FromString("GCTAGCTA", Alphabet::Dna());
  Sequence query = Sequence::FromString("GCTA", Alphabet::Dna());
  ResultCollector rc =
      BasicAligner::Run(text, query, ScoringScheme::Default(), 4);
  int ends_at_four = 0;
  for (const AlignmentHit& hit : rc.Sorted()) {
    if (hit.query_end == 3 && hit.score == 4) ++ends_at_four;
  }
  EXPECT_EQ(ends_at_four, 2);  // text ends 3 and 7
}

TEST(BasicAligner, AgreesWithSmithWatermanOnProtein) {
  SequenceGenerator gen(91);
  Sequence text = gen.Random(80, Alphabet::Protein());
  Sequence query = gen.HomologousQuery(text, 30, 0.7, 0.1, 0.05);
  for (int32_t h : {3, 6, 10}) {
    ScoringScheme scheme = ScoringScheme::Default();
    EXPECT_EQ(SmithWaterman::Run(text, query, scheme, h).Sorted(),
              BasicAligner::Run(text, query, scheme, h).Sorted())
        << "H=" << h;
  }
}

TEST(BasicAligner, NoResultsAboveBestScore) {
  SequenceGenerator gen(92);
  Sequence text = gen.Random(60, Alphabet::Dna());
  Sequence query = gen.Random(20, Alphabet::Dna());
  ResultCollector all = SmithWaterman::Run(text, query,
                                           ScoringScheme::Default(), 1);
  int32_t best = all.BestScore();
  EXPECT_EQ(
      BasicAligner::Run(text, query, ScoringScheme::Default(), best + 1).size(),
      0u);
}

}  // namespace
}  // namespace alae
