#include "src/io/fasta.h"

#include <gtest/gtest.h>

namespace alae {
namespace {

TEST(FastaReader, ParsesMultipleRecords) {
  std::string payload =
      ">seq1 description\nACGT\nACGT\n>seq2\nTTTT\n";
  std::vector<FastaRecord> records;
  std::string error;
  ASSERT_TRUE(FastaReader::ParseString(payload, &records, &error)) << error;
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].header, "seq1 description");
  EXPECT_EQ(records[0].residues, "ACGTACGT");
  EXPECT_EQ(records[1].residues, "TTTT");
}

TEST(FastaReader, HandlesWindowsLineEndingsAndBlankLines) {
  std::string payload = ">a\r\nAC GT\r\n\r\nACGT\r\n";
  std::vector<FastaRecord> records;
  std::string error;
  ASSERT_TRUE(FastaReader::ParseString(payload, &records, &error)) << error;
  EXPECT_EQ(records[0].residues, "ACGTACGT");  // inner whitespace stripped
}

TEST(FastaReader, RejectsResiduesBeforeHeader) {
  std::vector<FastaRecord> records;
  std::string error;
  EXPECT_FALSE(FastaReader::ParseString("ACGT\n>a\nACGT\n", &records, &error));
  EXPECT_NE(error.find("before first"), std::string::npos);
}

TEST(FastaReader, RejectsEmptyRecord) {
  std::vector<FastaRecord> records;
  std::string error;
  EXPECT_FALSE(FastaReader::ParseString(">a\n>b\nACGT\n", &records, &error));
  EXPECT_FALSE(FastaReader::ParseString(">only\n", &records, &error));
}

TEST(FastaReader, RejectsEmptyPayload) {
  std::vector<FastaRecord> records;
  std::string error;
  EXPECT_FALSE(FastaReader::ParseString("", &records, &error));
}

TEST(FastaReader, SkipsCommentLines) {
  std::vector<FastaRecord> records;
  std::string error;
  ASSERT_TRUE(
      FastaReader::ParseString(">a\n;comment\nACGT\n", &records, &error));
  EXPECT_EQ(records[0].residues, "ACGT");
}

TEST(FastaReader, ToTextConcatenatesWithBoundaries) {
  std::vector<FastaRecord> records = {{"a", "ACGT"}, {"b", "TT"}};
  std::vector<size_t> boundaries;
  Sequence text = FastaReader::ToText(records, Alphabet::Dna(), &boundaries);
  EXPECT_EQ(text.ToString(), "ACGTTT");
  EXPECT_EQ(boundaries, (std::vector<size_t>{0, 4}));
}

TEST(FastaWriter, RoundTripsThroughReader) {
  std::vector<FastaRecord> records = {
      {"chr1", std::string(150, 'A')}, {"chr2", "ACGTACGT"}};
  std::string payload = FastaWriter::ToString(records, 70);
  std::vector<FastaRecord> parsed;
  std::string error;
  ASSERT_TRUE(FastaReader::ParseString(payload, &parsed, &error)) << error;
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].residues, records[0].residues);
  EXPECT_EQ(parsed[1].residues, records[1].residues);
}

TEST(FastaWriter, FileRoundTrip) {
  std::vector<FastaRecord> records = {{"x", "ACGT"}};
  std::string path = ::testing::TempDir() + "/alae_fasta_test.fa";
  std::string error;
  ASSERT_TRUE(FastaWriter::WriteFile(path, records, &error)) << error;
  std::vector<FastaRecord> parsed;
  ASSERT_TRUE(FastaReader::ParseFile(path, &parsed, &error)) << error;
  EXPECT_EQ(parsed[0].residues, "ACGT");
}

TEST(FastaReader, MissingFileFails) {
  std::vector<FastaRecord> records;
  std::string error;
  EXPECT_FALSE(FastaReader::ParseFile("/nonexistent/file.fa", &records, &error));
}

}  // namespace
}  // namespace alae
