// Registry-driven conformance suite: every backend constructed through
// AlignerRegistry must (a) answer the paper's question identically to
// Smith-Waterman when it claims exactness, (b) reject malformed requests
// with a Status instead of crashing or silently misbehaving, and (c) honour
// the streaming HitSink contract (ordering, early stop, max_hits).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/api/api.h"
#include "src/baseline/smith_waterman.h"
#include "src/sim/generator.h"

namespace alae {
namespace api {
namespace {

struct Corpus {
  Sequence text;
  Sequence query;
  ScoringScheme scheme;
  int32_t threshold;
};

// Shared random inputs with planted homology so every trial has hits.
std::vector<Corpus> MakeCorpora() {
  std::vector<Corpus> corpora;
  for (int trial = 0; trial < 8; ++trial) {
    const Alphabet& alphabet =
        trial % 2 == 0 ? Alphabet::Dna() : Alphabet::Protein();
    SequenceGenerator gen(900 + static_cast<uint64_t>(trial));
    Corpus c;
    c.text = gen.Random(120 + 30 * trial, alphabet);
    c.query = gen.HomologousQuery(c.text, 25 + 5 * trial, /*fraction=*/0.7,
                                  /*divergence=*/0.15, /*indel_rate=*/0.05);
    c.scheme = ScoringScheme::Fig9(trial % 4);
    c.threshold = 5 + trial;
    corpora.push_back(std::move(c));
  }
  return corpora;
}

SearchRequest RequestFor(const Corpus& c) {
  SearchRequest request;
  request.query = c.query;
  request.scheme = c.scheme;
  request.threshold = c.threshold;
  return request;
}

std::string Tag(const std::string& backend, int trial) {
  return "backend=" + backend + " trial=" + std::to_string(trial);
}

TEST(AlignerRegistry, AllFiveBackendsConstructibleByName) {
  SequenceGenerator gen(1);
  AlignerRegistry registry(gen.Random(100, Alphabet::Dna()));
  for (const std::string& name : AlignerRegistry::BuiltinNames()) {
    StatusOr<std::unique_ptr<Aligner>> aligner = registry.Create(name);
    ASSERT_TRUE(aligner.ok()) << name << ": " << aligner.status().ToString();
    EXPECT_EQ((*aligner)->name(), name);
  }
  EXPECT_EQ(AlignerRegistry::BuiltinNames().size(), 5u);
  EXPECT_EQ(registry.Names(), AlignerRegistry::BuiltinNames());
}

TEST(AlignerRegistry, AliasesResolve) {
  SequenceGenerator gen(2);
  AlignerRegistry registry(gen.Random(80, Alphabet::Dna()));
  StatusOr<std::unique_ptr<Aligner>> bwtsw = registry.Create("bwtsw");
  ASSERT_TRUE(bwtsw.ok());
  EXPECT_EQ((*bwtsw)->name(), "bwt-sw");
  StatusOr<std::unique_ptr<Aligner>> sw = registry.Create("smith-waterman");
  ASSERT_TRUE(sw.ok());
  EXPECT_EQ((*sw)->name(), "sw");
}

TEST(AlignerRegistry, UnknownBackendIsNotFound) {
  SequenceGenerator gen(3);
  AlignerRegistry registry(gen.Random(80, Alphabet::Dna()));
  StatusOr<std::unique_ptr<Aligner>> aligner = registry.Create("mummer");
  ASSERT_FALSE(aligner.ok());
  EXPECT_EQ(aligner.status().code(), StatusCode::kNotFound);
  // The error teaches the caller the valid names.
  EXPECT_NE(aligner.status().message().find("alae"), std::string::npos);
}

TEST(AlignerRegistry, RuntimeRegistrationExtendsTheSet) {
  SequenceGenerator gen(4);
  AlignerRegistry registry(gen.Random(80, Alphabet::Dna()));
  registry.Register("sw-clone",
                    [](std::shared_ptr<const AlaeIndex> index) {
                      return std::make_unique<SmithWatermanBackend>(
                          std::move(index));
                    });
  ASSERT_TRUE(registry.Has("sw-clone"));
  StatusOr<std::unique_ptr<Aligner>> aligner = registry.Create("sw-clone");
  ASSERT_TRUE(aligner.ok());
  SearchRequest request;
  request.query = gen.Random(12, Alphabet::Dna());
  request.threshold = 3;
  EXPECT_TRUE((*aligner)->Search(request).ok());
}

// (a) Exactness: identical hit sets (end pairs AND scores) vs SW on shared
// random inputs, for every exact backend, through the facade.
TEST(Conformance, ExactBackendsMatchSmithWaterman) {
  std::vector<Corpus> corpora = MakeCorpora();
  for (size_t trial = 0; trial < corpora.size(); ++trial) {
    const Corpus& c = corpora[trial];
    std::vector<AlignmentHit> truth =
        SmithWaterman::Run(c.text, c.query, c.scheme, c.threshold).Sorted();
    AlignerRegistry registry(c.text);
    for (const std::string& name : AlignerRegistry::BuiltinNames()) {
      std::unique_ptr<Aligner> aligner = *registry.Create(name);
      if (!aligner->exact()) continue;
      StatusOr<SearchResponse> response = aligner->Search(RequestFor(c));
      ASSERT_TRUE(response.ok())
          << Tag(name, static_cast<int>(trial)) << ": "
          << response.status().ToString();
      EXPECT_EQ(response->hits, truth) << Tag(name, static_cast<int>(trial));
      EXPECT_EQ(response->stats.hits_emitted, truth.size());
      EXPECT_FALSE(response->stats.truncated);
    }
  }
}

// (b) The heuristic backend may miss hits but must never invent end pairs
// or overshoot the true score at a pair it reports.
TEST(Conformance, BlastReportsOnlyTrueEndPairs) {
  std::vector<Corpus> corpora = MakeCorpora();
  for (size_t trial = 0; trial < corpora.size(); ++trial) {
    const Corpus& c = corpora[trial];
    std::vector<AlignmentHit> truth =
        SmithWaterman::Run(c.text, c.query, c.scheme, c.threshold).Sorted();
    AlignerRegistry registry(c.text);
    std::unique_ptr<Aligner> blast = *registry.Create("blast");
    EXPECT_FALSE(blast->exact());
    StatusOr<SearchResponse> response = blast->Search(RequestFor(c));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    for (const AlignmentHit& hit : response->hits) {
      auto it = std::lower_bound(
          truth.begin(), truth.end(), hit,
          [](const AlignmentHit& a, const AlignmentHit& b) {
            if (a.text_end != b.text_end) return a.text_end < b.text_end;
            return a.query_end < b.query_end;
          });
      ASSERT_TRUE(it != truth.end() && it->text_end == hit.text_end &&
                  it->query_end == hit.query_end)
          << "blast invented end pair (" << hit.text_end << ","
          << hit.query_end << ") in trial " << trial;
      EXPECT_LE(hit.score, it->score)
          << "blast overshot the optimal score in trial " << trial;
      EXPECT_GE(hit.score, c.threshold);
    }
  }
}

// (c) Invalid requests: the same Status cases across every backend, with no
// crashes or UB.
TEST(Conformance, InvalidRequestsRejectedAcrossAllBackends) {
  SequenceGenerator gen(42);
  Sequence text = gen.Random(150, Alphabet::Dna());
  AlignerRegistry registry(text);
  Sequence good_query = gen.HomologousQuery(text, 30, 0.7, 0.15, 0.05);

  for (const std::string& name : AlignerRegistry::BuiltinNames()) {
    std::unique_ptr<Aligner> aligner = *registry.Create(name);

    SearchRequest empty_query;
    empty_query.threshold = 10;
    EXPECT_EQ(aligner->Search(empty_query).status().code(),
              StatusCode::kInvalidArgument)
        << name << " accepted an empty query";

    for (int32_t bad_threshold : {0, -5}) {
      SearchRequest request;
      request.query = good_query;
      request.threshold = bad_threshold;
      EXPECT_EQ(aligner->Search(request).status().code(),
                StatusCode::kInvalidArgument)
          << name << " accepted threshold " << bad_threshold;
    }

    SearchRequest mismatched;
    mismatched.query = gen.Random(20, Alphabet::Protein());
    mismatched.threshold = 10;
    EXPECT_EQ(aligner->Search(mismatched).status().code(),
              StatusCode::kInvalidArgument)
        << name << " accepted a protein query against a DNA text";

    SearchRequest bad_scheme;
    bad_scheme.query = good_query;
    bad_scheme.threshold = 10;
    bad_scheme.scheme = ScoringScheme{-1, 3, 5, 2};  // all signs wrong
    EXPECT_EQ(aligner->Search(bad_scheme).status().code(),
              StatusCode::kInvalidArgument)
        << name << " accepted a malformed scoring scheme";

    // The streaming overload reports the same Status and never touches the
    // sink.
    bool sink_called = false;
    Status status = aligner->Search(
        empty_query, [&](const AlignmentHit&) {
          sink_called = true;
          return true;
        });
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << name;
    EXPECT_FALSE(sink_called) << name;
  }
}

// HitSink contract: ordered delivery, early stop, max_hits truncation.
TEST(Conformance, StreamingSinkContract) {
  SequenceGenerator gen(77);
  Sequence text = gen.Random(200, Alphabet::Dna());
  Sequence query = gen.HomologousQuery(text, 60, 0.8, 0.10, 0.05);
  SearchRequest request;
  request.query = query;
  request.threshold = 8;

  AlignerRegistry registry(text);
  for (const std::string& name : AlignerRegistry::BuiltinNames()) {
    std::unique_ptr<Aligner> aligner = *registry.Create(name);

    // Full stream arrives in (text_end, query_end) order.
    std::vector<AlignmentHit> streamed;
    EngineStats stats;
    ASSERT_TRUE(aligner
                    ->Search(request,
                             [&](const AlignmentHit& hit) {
                               streamed.push_back(hit);
                               return true;
                             },
                             &stats)
                    .ok())
        << name;
    ASSERT_GT(streamed.size(), 3u)
        << name << ": workload too thin to exercise streaming";
    for (size_t i = 1; i < streamed.size(); ++i) {
      bool ordered =
          streamed[i - 1].text_end < streamed[i].text_end ||
          (streamed[i - 1].text_end == streamed[i].text_end &&
           streamed[i - 1].query_end < streamed[i].query_end);
      ASSERT_TRUE(ordered) << name << ": unordered hit " << i;
    }
    EXPECT_EQ(stats.hits_emitted, streamed.size()) << name;
    EXPECT_FALSE(stats.truncated) << name;
    EXPECT_GT(stats.seconds, 0.0) << name;

    // Sink returning false stops the stream.
    size_t seen = 0;
    ASSERT_TRUE(aligner
                    ->Search(request,
                             [&](const AlignmentHit&) {
                               return ++seen < 3;
                             },
                             &stats)
                    .ok())
        << name;
    EXPECT_EQ(seen, 3u) << name;
    EXPECT_EQ(stats.hits_emitted, 3u) << name;
    EXPECT_TRUE(stats.truncated) << name;

    // max_hits caps the materialising overload with a truncation marker,
    // and the prefix matches the full stream.
    SearchRequest capped = request;
    capped.max_hits = 2;
    StatusOr<SearchResponse> response = aligner->Search(capped);
    ASSERT_TRUE(response.ok()) << name;
    ASSERT_EQ(response->hits.size(), 2u) << name;
    EXPECT_TRUE(response->stats.truncated) << name;
    EXPECT_EQ(response->hits[0], streamed[0]) << name;
    EXPECT_EQ(response->hits[1], streamed[1]) << name;
  }
}

// Exact backends expose the paper's instrumentation through EngineStats.
TEST(Conformance, StatsSurfaceEngineWork) {
  SequenceGenerator gen(5);
  Sequence text = gen.Random(300, Alphabet::Dna());
  Sequence query = gen.HomologousQuery(text, 50, 0.7, 0.15, 0.05);
  SearchRequest request;
  request.query = query;
  request.threshold = 10;
  AlignerRegistry registry(text);

  StatusOr<SearchResponse> alae = (*registry.Create("alae"))->Search(request);
  ASSERT_TRUE(alae.ok());
  EXPECT_GT(alae->stats.counters.Accessed(), 0u);
  EXPECT_GT(alae->stats.grams_searched, 0u);

  StatusOr<SearchResponse> bwtsw =
      (*registry.Create("bwt-sw"))->Search(request);
  ASSERT_TRUE(bwtsw.ok());
  EXPECT_GT(bwtsw->stats.counters.cells_cost3, 0u);

  StatusOr<SearchResponse> sw = (*registry.Create("sw"))->Search(request);
  ASSERT_TRUE(sw.ok());
  EXPECT_EQ(sw->stats.counters.cells_cost3,
            static_cast<uint64_t>(text.size()) * query.size());

  StatusOr<SearchResponse> blast = (*registry.Create("blast"))->Search(request);
  ASSERT_TRUE(blast.ok());
  EXPECT_GT(blast->stats.seeds, 0u);
}

// The BASIC backend refuses texts beyond its O(n^2) trie cap with a
// FailedPrecondition instead of exhausting memory.
TEST(Conformance, BasicBackendEnforcesTextCap) {
  SequenceGenerator gen(6);
  AlignerRegistry registry(
      gen.Random(BasicBackend::kMaxTextLen + 1, Alphabet::Dna()));
  std::unique_ptr<Aligner> basic = *registry.Create("basic");
  SearchRequest request;
  request.query = gen.Random(20, Alphabet::Dna());
  request.threshold = 10;
  EXPECT_EQ(basic->Search(request).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(basic->Prepare(request).code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace api
}  // namespace alae
