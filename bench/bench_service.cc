// Service throughput bench: queries/sec of the sharded query service as
// worker threads scale (1/2/4/8) and as the shard count sweeps (1/2/4/8
// shards at a fixed thread count). The scaling curve is the whole point of
// the service layer, so this harness is the CI trend gate for it.
//
//   ./bench_service [--n=...] [--queries=...] [--seed=...] [--json=out.json]
//
// Methodology: one corpus per shard count (same text), cache disabled so
// the engines do real work every time, micro-batched SearchBatch admission,
// min-of-rounds wall time, and a cross-configuration hit checksum so a
// concurrency bug cannot masquerade as a speedup. Exit code 2 when the
// 8-thread speedup misses the 3x target (CI smoke tolerates it on shared
// or few-core runners — this box may have fewer cores; the enforced gate
// is compare_bench.py's anchored-ratio drift check).

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/service/service.h"
#include "src/sim/generator.h"
#include "src/util/table_printer.h"
#include "src/util/timer.h"

using namespace alae;
using namespace alae::bench;

namespace {

constexpr int64_t kOverlap = 2048;
constexpr int32_t kQueryLen = 64;
constexpr int32_t kThreshold = 24;
constexpr int kRounds = 3;

std::unique_ptr<service::ShardedCorpus> BuildCorpus(const Sequence& text,
                                                    int target_shards) {
  service::ShardedCorpusOptions options;
  const int64_t n = static_cast<int64_t>(text.size());
  options.overlap = target_shards > 1 ? kOverlap : 0;
  options.shard_size =
      target_shards > 1 ? n / target_shards + 2 * options.overlap + 1 : n + 1;
  auto corpus = service::ShardedCorpus::Build(text, options);
  if (!corpus.ok()) {
    std::fprintf(stderr, "corpus build failed: %s\n",
                 corpus.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(corpus).value();
}

struct RunResult {
  double seconds = 0;       // best-of-rounds wall time for the whole batch
  uint64_t hit_checksum = 0;
};

RunResult RunBatch(service::ShardedCorpus& corpus, int threads,
                   const std::vector<api::SearchRequest>& requests) {
  service::QueryScheduler scheduler(
      corpus, {.threads = threads,
               .queue_capacity = 1 << 16,
               .cache_capacity = 0});
  RunResult result;
  for (int round = 0; round < kRounds; ++round) {
    Timer timer;
    std::vector<api::QueryOutcome> outcomes =
        scheduler.SearchBatch("alae", requests);
    const double seconds = timer.ElapsedSeconds();
    uint64_t checksum = 0;
    for (const api::QueryOutcome& o : outcomes) {
      if (!o.ok()) {
        std::fprintf(stderr, "query failed: %s\n", o.status.ToString().c_str());
        std::exit(1);
      }
      for (const AlignmentHit& hit : o.response.hits) {
        checksum = checksum * 1315423911ULL +
                   static_cast<uint64_t>(hit.text_end * 31 + hit.query_end) *
                       static_cast<uint64_t>(hit.score);
      }
    }
    if (round == 0) {
      result.hit_checksum = checksum;
    } else if (checksum != result.hit_checksum) {
      std::fprintf(stderr, "hit checksum diverged across rounds\n");
      std::exit(1);
    }
    if (round == 0 || seconds < result.seconds) result.seconds = seconds;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const int64_t n = flags.N(1 << 20);
  const int32_t num_queries = flags.Q(64);

  SequenceGenerator gen(flags.seed);
  Sequence text = gen.Random(n, Alphabet::Dna());
  std::vector<api::SearchRequest> requests;
  requests.reserve(static_cast<size_t>(num_queries));
  for (int32_t q = 0; q < num_queries; ++q) {
    api::SearchRequest request;
    request.query = gen.HomologousQuery(text, kQueryLen, 0.7, 0.3, 0.01);
    request.threshold = kThreshold;
    requests.push_back(std::move(request));
  }

  JsonReport report;
  TablePrinter table({"config", "shards", "sec/batch", "qps", "ns/query"});

  // --- Thread scaling on the multi-shard corpus. ---
  std::unique_ptr<service::ShardedCorpus> corpus = BuildCorpus(text, 8);
  double ns_t1 = 0, ns_t8 = 0;
  uint64_t checksum = 0;
  for (int threads : {1, 2, 4, 8}) {
    RunResult r = RunBatch(*corpus, threads, requests);
    if (threads == 1) {
      checksum = r.hit_checksum;
    } else if (r.hit_checksum != checksum) {
      std::fprintf(stderr, "hit checksum diverged across thread counts\n");
      return 1;
    }
    const double ns =
        r.seconds * 1e9 / static_cast<double>(num_queries);
    if (threads == 1) ns_t1 = ns;
    if (threads == 8) ns_t8 = ns;
    report.Add("service/threads/" + std::to_string(threads), ns,
               static_cast<double>(num_queries) / r.seconds);
    table.AddRow({"threads=" + std::to_string(threads),
                  std::to_string(corpus->num_shards()),
                  TablePrinter::Fmt(r.seconds),
                  TablePrinter::Fmt(num_queries / r.seconds, 1),
                  TablePrinter::Fmt(static_cast<uint64_t>(ns))});
  }

  // --- Shard-count sweep at a fixed thread count. ---
  for (int shards : {1, 2, 4, 8}) {
    std::unique_ptr<service::ShardedCorpus> swept = BuildCorpus(text, shards);
    RunResult r = RunBatch(*swept, 4, requests);
    // The merged hit set is shard-count invariant by construction (the
    // ownership filter + dedup is exactly the bit-exactness contract), so
    // every sweep point must reproduce the scaling corpus's checksum — a
    // boundary/merge regression cannot masquerade as a speedup.
    if (r.hit_checksum != checksum) {
      std::fprintf(stderr, "hit checksum diverged at %d shards\n", shards);
      return 1;
    }
    const double ns = r.seconds * 1e9 / static_cast<double>(num_queries);
    report.Add("service/shards/" + std::to_string(swept->num_shards()), ns,
               static_cast<double>(num_queries) / r.seconds);
    table.AddRow({"threads=4",
                  std::to_string(swept->num_shards()),
                  TablePrinter::Fmt(r.seconds),
                  TablePrinter::Fmt(num_queries / r.seconds, 1),
                  TablePrinter::Fmt(static_cast<uint64_t>(ns))});
  }

  std::printf("%s", table.ToString().c_str());
  const double speedup = ns_t8 > 0 ? ns_t1 / ns_t8 : 0;
  std::printf("\n8-thread speedup over 1 thread: %.2fx (target >= 3x)\n",
              speedup);

  if (!report.WriteTo(flags.json)) {
    std::fprintf(stderr, "failed writing %s\n", flags.json.c_str());
    return 1;
  }
  return speedup >= 3.0 ? 0 : 2;
}
