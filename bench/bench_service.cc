// Service throughput bench: queries/sec of the sharded query service as
// worker threads scale (1/2/4/8) and as the shard count sweeps (1/2/4/8
// shards at a fixed thread count), plus the query-compilation prep-cost
// series (plan compile ns and the 8-shard/1-shard per-query cost ratio —
// the shared QueryPlan + fused ALAE walk should hold it near 1x plus
// overlap duplication and per-shard anchoring, where per-shard replanning
// measured ~2.9x). The scaling and flatness curves are the whole point of
// the service layer, so this harness is the CI trend gate for them.
//
//   ./bench_service [--n=...] [--queries=...] [--seed=...] [--json=out.json]
//
// Methodology: one corpus per shard count (same text), cache disabled so
// the engines do real work every time, micro-batched SearchBatch admission,
// min-of-rounds wall time, and a cross-configuration hit checksum so a
// concurrency bug cannot masquerade as a speedup. Exit code 2 when the
// 8-thread speedup misses the 3x target — downgraded to a warning (exit 0)
// when the runner has fewer than 4 hardware threads, where the target is
// unmeetable by construction; the enforced gate either way is
// compare_bench.py's anchored-ratio drift check.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/service/service.h"
#include "src/sim/generator.h"
#include "src/util/cancel.h"
#include "src/util/table_printer.h"
#include "src/util/timer.h"

using namespace alae;
using namespace alae::bench;

namespace {

constexpr int64_t kOverlap = 2048;
constexpr int32_t kQueryLen = 64;
constexpr int32_t kThreshold = 24;
constexpr int kRounds = 3;

std::unique_ptr<service::ShardedCorpus> BuildCorpus(const Sequence& text,
                                                    int target_shards) {
  service::ShardedCorpusOptions options;
  const int64_t n = static_cast<int64_t>(text.size());
  options.overlap = target_shards > 1 ? kOverlap : 0;
  options.shard_size =
      target_shards > 1 ? n / target_shards + 2 * options.overlap + 1 : n + 1;
  auto corpus = service::ShardedCorpus::Build(text, options);
  if (!corpus.ok()) {
    std::fprintf(stderr, "corpus build failed: %s\n",
                 corpus.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(corpus).value();
}

struct RunResult {
  double seconds = 0;       // best-of-rounds wall time for the whole batch
  uint64_t hit_checksum = 0;
};

// One timed pass of the batch through `scheduler`; folds the wall time and
// hit checksum into `result` (min-of-rounds seconds, checksum must agree
// across every call that shares a result).
void RunOnce(service::QueryScheduler& scheduler,
             const std::vector<api::SearchRequest>& requests, bool first,
             RunResult* result) {
  Timer timer;
  std::vector<api::QueryOutcome> outcomes =
      scheduler.SearchBatch("alae", requests);
  const double seconds = timer.ElapsedSeconds();
  uint64_t checksum = 0;
  for (const api::QueryOutcome& o : outcomes) {
    if (!o.ok()) {
      std::fprintf(stderr, "query failed: %s\n", o.status.ToString().c_str());
      std::exit(1);
    }
    for (const AlignmentHit& hit : o.response.hits) {
      checksum = checksum * 1315423911ULL +
                 static_cast<uint64_t>(hit.text_end * 31 + hit.query_end) *
                     static_cast<uint64_t>(hit.score);
    }
  }
  if (first) {
    result->hit_checksum = checksum;
    result->seconds = seconds;
  } else {
    if (checksum != result->hit_checksum) {
      std::fprintf(stderr, "hit checksum diverged across rounds\n");
      std::exit(1);
    }
    result->seconds = std::min(result->seconds, seconds);
  }
}

RunResult RunBatch(service::ShardedCorpus& corpus, int threads,
                   const std::vector<api::SearchRequest>& requests) {
  service::QueryScheduler scheduler(
      corpus, {.threads = threads,
               .queue_capacity = 1 << 16,
               .cache_capacity = 0});
  RunResult result;
  for (int round = 0; round < kRounds; ++round) {
    RunOnce(scheduler, requests, round == 0, &result);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const int64_t n = flags.N(1 << 20);
  const int32_t num_queries = flags.Q(64);

  SequenceGenerator gen(flags.seed);
  Sequence text = gen.Random(n, Alphabet::Dna());
  std::vector<api::SearchRequest> requests;
  requests.reserve(static_cast<size_t>(num_queries));
  for (int32_t q = 0; q < num_queries; ++q) {
    api::SearchRequest request;
    request.query = gen.HomologousQuery(text, kQueryLen, 0.7, 0.3, 0.01);
    request.threshold = kThreshold;
    requests.push_back(std::move(request));
  }

  JsonReport report;
  TablePrinter table({"config", "shards", "sec/batch", "qps", "ns/query"});

  // --- Thread scaling on the multi-shard corpus. ---
  std::unique_ptr<service::ShardedCorpus> corpus = BuildCorpus(text, 8);
  double ns_t1 = 0, ns_t8 = 0;
  uint64_t checksum = 0;
  for (int threads : {1, 2, 4, 8}) {
    RunResult r = RunBatch(*corpus, threads, requests);
    if (threads == 1) {
      checksum = r.hit_checksum;
    } else if (r.hit_checksum != checksum) {
      std::fprintf(stderr, "hit checksum diverged across thread counts\n");
      return 1;
    }
    const double ns =
        r.seconds * 1e9 / static_cast<double>(num_queries);
    if (threads == 1) ns_t1 = ns;
    if (threads == 8) ns_t8 = ns;
    report.Add("service/threads/" + std::to_string(threads), ns,
               static_cast<double>(num_queries) / r.seconds);
    table.AddRow({"threads=" + std::to_string(threads),
                  std::to_string(corpus->num_shards()),
                  TablePrinter::Fmt(r.seconds),
                  TablePrinter::Fmt(num_queries / r.seconds, 1),
                  TablePrinter::Fmt(static_cast<uint64_t>(ns))});
  }

  // --- Shard-count sweep at a fixed thread count: the prep-cost curve.
  // With per-shard replanning this grew ~2.9x from 1 to 8 shards; the
  // shared QueryPlan, the fused ALAE walk, and the sampled-row conversion
  // of singleton chains to text reads bring it to ~1.5x (the residue is
  // k per-lane boundary ranks on k physically separate occ structures).
  // Rounds are interleaved across the shard counts (every round touches
  // every configuration back to back) so slow machine-speed drift — the
  // dominant noise on shared runners — cancels out of the curve instead
  // of biasing whichever configuration ran last.
  const int sweep_shards[] = {1, 2, 4, 8};
  std::vector<std::unique_ptr<service::ShardedCorpus>> swept;
  std::vector<std::unique_ptr<service::QueryScheduler>> sweep_scheds;
  for (int shards : sweep_shards) {
    swept.push_back(BuildCorpus(text, shards));
    sweep_scheds.push_back(std::make_unique<service::QueryScheduler>(
        *swept.back(), service::SchedulerOptions{.threads = 4,
                                                 .queue_capacity = 1 << 16,
                                                 .cache_capacity = 0}));
  }
  RunResult sweep_results[4];
  for (int round = 0; round < kRounds; ++round) {
    for (size_t s = 0; s < swept.size(); ++s) {
      RunOnce(*sweep_scheds[s], requests, round == 0, &sweep_results[s]);
    }
  }
  double ns_s1 = 0, ns_s8 = 0;
  for (size_t s = 0; s < swept.size(); ++s) {
    const RunResult& r = sweep_results[s];
    // The merged hit set is shard-count invariant by construction (the
    // ownership filter + dedup is exactly the bit-exactness contract), so
    // every sweep point must reproduce the scaling corpus's checksum — a
    // boundary/merge regression cannot masquerade as a speedup.
    if (r.hit_checksum != checksum) {
      std::fprintf(stderr, "hit checksum diverged at %d shards\n",
                   sweep_shards[s]);
      return 1;
    }
    const double ns = r.seconds * 1e9 / static_cast<double>(num_queries);
    if (sweep_shards[s] == 1) ns_s1 = ns;
    if (sweep_shards[s] == 8) ns_s8 = ns;
    report.Add("service/shards/" + std::to_string(swept[s]->num_shards()), ns,
               static_cast<double>(num_queries) / r.seconds);
    table.AddRow({"threads=4",
                  std::to_string(swept[s]->num_shards()),
                  TablePrinter::Fmt(r.seconds),
                  TablePrinter::Fmt(num_queries / r.seconds, 1),
                  TablePrinter::Fmt(static_cast<uint64_t>(ns))});
  }

  // --- Cancellation-check overhead: the same batch on the same 8-shard
  // corpus with and without a (far-future) deadline token on every
  // request. The token turns on the amortised CancelScan polls in every
  // hot loop, so on/off isolates exactly what deadline support costs a
  // request that never expires — the design target is "invisible", and
  // compare_bench gates the anchored ratio at 5%. Rounds interleave the
  // two configurations so machine-speed drift cancels out of the ratio.
  double cancel_overhead = 0;
  {
    std::vector<CancelToken> tokens(requests.size());
    std::vector<api::SearchRequest> capped = requests;
    for (size_t q = 0; q < capped.size(); ++q) {
      tokens[q].SetDeadlineAfter(std::chrono::hours(24));
      capped[q].cancel = &tokens[q];
    }
    service::QueryScheduler scheduler(
        *corpus, {.threads = 4,
                  .queue_capacity = 1 << 16,
                  .cache_capacity = 0});
    RunResult off, on;
    for (int round = 0; round < kRounds; ++round) {
      RunOnce(scheduler, requests, round == 0, &off);
      RunOnce(scheduler, capped, round == 0, &on);
    }
    if (off.hit_checksum != checksum || on.hit_checksum != checksum) {
      std::fprintf(stderr, "hit checksum diverged under deadline tokens\n");
      return 1;
    }
    const double ns_off = off.seconds * 1e9 / num_queries;
    const double ns_on = on.seconds * 1e9 / num_queries;
    cancel_overhead = ns_off > 0 ? ns_on / ns_off - 1.0 : 0;
    report.Add("service/cancel/off", ns_off,
               static_cast<double>(num_queries) / off.seconds);
    report.Add("service/cancel/on", ns_on,
               static_cast<double>(num_queries) / on.seconds);
    table.AddRow({"cancel=off", std::to_string(corpus->num_shards()),
                  TablePrinter::Fmt(off.seconds),
                  TablePrinter::Fmt(num_queries / off.seconds, 1),
                  TablePrinter::Fmt(static_cast<uint64_t>(ns_off))});
    table.AddRow({"cancel=on", std::to_string(corpus->num_shards()),
                  TablePrinter::Fmt(on.seconds),
                  TablePrinter::Fmt(num_queries / on.seconds, 1),
                  TablePrinter::Fmt(static_cast<uint64_t>(ns_on))});
  }

  // --- Metrics overhead: the same batch on the same 8-shard corpus
  // through an uninstrumented scheduler (enable_metrics=false — every
  // registry pointer is null, so the hot path pays nothing) and through
  // the default instrumented one (sharded-atomic counters + latency
  // histogram on every request; tracing stays off, its sampled-out cost
  // is one RNG draw). compare_bench gates the anchored on/off ratio at
  // 5%. Rounds interleave the two schedulers so machine-speed drift
  // cancels out of the ratio.
  double obs_overhead = 0;
  {
    service::QueryScheduler plain(
        *corpus, {.threads = 4,
                  .queue_capacity = 1 << 16,
                  .cache_capacity = 0,
                  .enable_metrics = false});
    service::QueryScheduler instrumented(
        *corpus, {.threads = 4,
                  .queue_capacity = 1 << 16,
                  .cache_capacity = 0});
    RunResult off, on;
    for (int round = 0; round < kRounds; ++round) {
      RunOnce(plain, requests, round == 0, &off);
      RunOnce(instrumented, requests, round == 0, &on);
    }
    if (off.hit_checksum != checksum || on.hit_checksum != checksum) {
      std::fprintf(stderr, "hit checksum diverged under metrics\n");
      return 1;
    }
    const double ns_off = off.seconds * 1e9 / num_queries;
    const double ns_on = on.seconds * 1e9 / num_queries;
    obs_overhead = ns_off > 0 ? ns_on / ns_off - 1.0 : 0;
    report.Add("service/obs/off", ns_off,
               static_cast<double>(num_queries) / off.seconds);
    report.Add("service/obs/on", ns_on,
               static_cast<double>(num_queries) / on.seconds);
    table.AddRow({"obs=off", std::to_string(corpus->num_shards()),
                  TablePrinter::Fmt(off.seconds),
                  TablePrinter::Fmt(num_queries / off.seconds, 1),
                  TablePrinter::Fmt(static_cast<uint64_t>(ns_off))});
    table.AddRow({"obs=on", std::to_string(corpus->num_shards()),
                  TablePrinter::Fmt(on.seconds),
                  TablePrinter::Fmt(num_queries / on.seconds, 1),
                  TablePrinter::Fmt(static_cast<uint64_t>(ns_on))});
  }

  // --- Plan-compilation prep cost: what the service pays once per request
  // (and what every shard used to pay before plans were shared).
  {
    auto aligner = corpus->AlignerFor(0, "alae");
    if (!aligner.ok()) {
      std::fprintf(stderr, "aligner: %s\n",
                   aligner.status().ToString().c_str());
      return 1;
    }
    Timer timer;
    int compiles = 0;
    for (int round = 0; round < kRounds; ++round) {
      for (const api::SearchRequest& request : requests) {
        auto plan = (*aligner)->Compile(request);
        if (!plan.ok()) {
          std::fprintf(stderr, "compile: %s\n",
                       plan.status().ToString().c_str());
          return 1;
        }
        ++compiles;
      }
    }
    const double compile_ns = timer.ElapsedSeconds() * 1e9 / compiles;
    report.Add("service/plan_compile", compile_ns,
               1e9 / compile_ns);
    std::printf("\nALAE plan compile: %.0f ns/query (amortised across %zu "
                "shards when served)\n",
                compile_ns, corpus->num_shards());
  }

  std::printf("%s", table.ToString().c_str());
  const unsigned cores = std::thread::hardware_concurrency();
  const double speedup = ns_t8 > 0 ? ns_t1 / ns_t8 : 0;
  const double shard_ratio = ns_s1 > 0 ? ns_s8 / ns_s1 : 0;
  std::printf("\nhardware_concurrency: %u\n", cores);
  std::printf("8-thread speedup over 1 thread: %.2fx (target >= 3x)\n",
              speedup);
  std::printf(
      "per-query cost, 8 shards vs 1 shard: %.2fx (fused walk + singleton "
      "text conversion measured ~1.5x; per-shard replanning was ~2.9x; the "
      "residue is k per-lane ranks on k separate occ structures)\n",
      shard_ratio);
  std::printf(
      "cancellation-check overhead (deadline token, never expires): "
      "%+.1f%% (gated at 5%% by the anchored compare)\n",
      cancel_overhead * 100.0);
  std::printf(
      "metrics overhead (sharded-atomic counters + latency histogram): "
      "%+.1f%% (gated at 5%% by the anchored compare)\n",
      obs_overhead * 100.0);

  if (!report.WriteTo(flags.json)) {
    std::fprintf(stderr, "failed writing %s\n", flags.json.c_str());
    return 1;
  }
  if (speedup < 3.0) {
    if (cores < 4) {
      std::printf(
          "WARNING: 8-thread speedup %.2fx misses the 3x target, but this "
          "runner has only %u hardware thread(s) — gate downgraded to a "
          "warning (the anchored-ratio compare gate still applies)\n",
          speedup, cores);
      return 0;
    }
    return 2;
  }
  return 0;
}
