// Fig 8: ALAE alignment time when varying the expectation value E from
// 1e-15 to 10 under <1,-3,-5,-2>, for three query workloads.
//
// Paper shape: ALAE is barely sensitive to E — only small time *rises* as
// E grows (larger E = smaller H = later terminations), because score
// filtering contributes a small share of the pruning.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/util/table_printer.h"

using namespace alae;
using namespace alae::bench;

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const int64_t n = flags.N(2'000'000);
  const ScoringScheme scheme = ScoringScheme::Default();

  std::printf("Fig 8: ALAE time vs E-value (n=%lld, scheme %s)\n",
              static_cast<long long>(n), scheme.ToString().c_str());
  TablePrinter table({"m", "E", "H", "time (s)", "results"});

  Workload base = MakeWorkload(n, 1000, flags.Q(2), AlphabetKind::kDna,
                               flags.seed);
  AlaeIndex index(base.text);
  for (int64_t m : {flags.M(1000), flags.M(10'000), flags.M(30'000)}) {
    Workload w = MakeWorkload(n, m, flags.Q(2), AlphabetKind::kDna, flags.seed);
    w.text = base.text;
    for (double e : {1e-15, 1e-10, 1e-5, 1.0, 10.0}) {
      int32_t h = ThresholdFor(e, m, n, scheme, 4);
      EngineResult r = RunAlae(index, w, scheme, h);
      char ebuf[32];
      std::snprintf(ebuf, sizeof(ebuf), "%.0e", e);
      table.AddRow({std::to_string(m), ebuf, std::to_string(h),
                    TablePrinter::Fmt(r.seconds), TablePrinter::Fmt(r.hits)});
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nPaper: m=10K runs 72ms (E=1e-15) to 79.9ms (E=10) — small rises\n"
      "with E; ALAE is not very sensitive to E-values.\n");
  return 0;
}
