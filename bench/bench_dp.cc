// DP row-kernel microbench: cell throughput of the shared affine-gap row
// kernel (src/align/simd_dp.h) per dispatch tier — scalar oracle, SSE2,
// AVX2 — on DNA-shaped gap-region rows at several row widths (short rows
// are the ALAE fork shape, long rows the BWT-SW near-root shape).
//
//   ./bench_dp [--m=...] [--queries=rows] [--seed=...] [--json=out.json]
//
// Inputs mimic what the engines feed the kernel: previous-row scores in the
// tens with dead patches, a DNA substitution profile lane, the positivity
// bound, and a live Gb carry. Every tier runs the identical row set and the
// output M lanes are checksummed against the scalar oracle, so a tier that
// computed garbage fast fails loudly rather than winning the table.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/align/simd_dp.h"
#include "src/util/rng.h"
#include "src/util/table_printer.h"
#include "src/util/timer.h"

using namespace alae;
using namespace alae::bench;

namespace {

struct RowSet {
  int64_t len = 0;
  int64_t rows = 0;
  // All rows concatenated: row r occupies [r*len, (r+1)*len).
  std::vector<int32_t> prev_m, prev_ga, diag_m, delta;
  std::vector<int32_t> out_m, out_ga, out_gb;
};

RowSet MakeRowSet(int64_t len, int64_t rows, uint64_t seed) {
  RowSet set;
  set.len = len;
  set.rows = rows;
  size_t total = static_cast<size_t>(len * rows);
  set.prev_m.resize(total);
  set.prev_ga.resize(total);
  set.diag_m.resize(total);
  set.delta.resize(total);
  set.out_m.resize(total);
  set.out_ga.resize(total);
  set.out_gb.resize(total);
  Rng rng(seed);
  const ScoringScheme scheme = ScoringScheme::Default();
  for (size_t i = 0; i < total; ++i) {
    bool dead = rng.Bernoulli(0.25);
    set.prev_m[i] =
        dead ? kNegInf : static_cast<int32_t>(rng.Range(1, 80));
    set.prev_ga[i] = rng.Bernoulli(0.5)
                         ? kNegInf
                         : static_cast<int32_t>(rng.Range(1, 60));
    set.diag_m[i] =
        rng.Bernoulli(0.25) ? kNegInf : static_cast<int32_t>(rng.Range(1, 80));
    // DNA profile lane: match 1/4 of the time under Default() scoring.
    set.delta[i] = rng.Bernoulli(0.25) ? scheme.sa : scheme.sb;
  }
  return set;
}

// Runs every row of the set once through the dispatched kernel; returns a
// cheap chain-state sink (full-output checksums happen outside the timed
// loop — a serial per-cell hash would dominate the kernel itself).
uint64_t RunRowSet(RowSet* set) {
  const ScoringScheme scheme = ScoringScheme::Default();
  uint64_t sum = 0;
  for (int64_t r = 0; r < set->rows; ++r) {
    size_t off = static_cast<size_t>(r * set->len);
    simd::RowSpec spec;
    spec.prev_m = set->prev_m.data() + off;
    spec.prev_ga = set->prev_ga.data() + off;
    spec.prev_diag_m = set->diag_m.data() + off;
    spec.delta = set->delta.data() + off;
    spec.out_m = set->out_m.data() + off;
    spec.out_ga = set->out_ga.data() + off;
    spec.out_gb = set->out_gb.data() + off;
    spec.len = set->len;
    spec.gap_extend = scheme.ss;
    spec.gap_open_extend = scheme.sg + scheme.ss;
    spec.gb_init = 10;  // a live carry entering the window
    spec.bound_base = 0;
    spec.bound0 = kNegInf;
    spec.bound_step = 0;
    simd::RowStats stats;
    simd::ComputeRow(spec, &stats);
    sum += static_cast<uint32_t>(stats.gb_last + 3 * stats.mu_last +
                                 stats.last_alive);
  }
  return sum;
}

// Full-output digest, used once per tier to pin the vector kernels to the
// scalar oracle's exact cell values.
uint64_t DigestRowSet(const RowSet& set) {
  uint64_t sum = 0;
  for (int32_t v : set.out_m) sum = sum * 31 + static_cast<uint32_t>(v);
  for (int32_t v : set.out_ga) sum = sum * 31 + static_cast<uint32_t>(v);
  for (int32_t v : set.out_gb) sum = sum * 31 + static_cast<uint32_t>(v);
  return sum;
}

struct TierResult {
  bool supported = false;
  double ns_per_cell = 0;
  double cells_per_sec = 0;
  uint64_t checksum = 0;
};

TierResult MeasureTier(simd::DpTier tier, RowSet* set) {
  TierResult res;
  if (!simd::DpTierSupported(tier)) return res;
  res.supported = true;
  simd::SetDpTier(tier);
  RunRowSet(set);  // warm-up; fills the output lanes
  res.checksum = DigestRowSet(*set);  // correctness anchor vs the oracle
  const uint64_t cells_per_pass =
      static_cast<uint64_t>(set->len) * static_cast<uint64_t>(set->rows);
  // Auto-scale the pass count to a measurable window, then keep the best of
  // several repetitions: the minimum is the standard noise filter for
  // microbenchmarks on shared machines (anything slower was interference).
  int passes = 1;
  double seconds = 0;
  for (;;) {
    Timer timer;
    uint64_t sink = 0;
    for (int p = 0; p < passes; ++p) sink += RunRowSet(set);
    seconds = timer.ElapsedSeconds();
    if (sink == 1) std::printf("!");  // keep the optimizer honest
    if (seconds > 0.05 || passes > 1 << 16) break;
    passes *= 4;
  }
  for (int rep = 0; rep < 6; ++rep) {
    Timer timer;
    uint64_t sink = 0;
    for (int p = 0; p < passes; ++p) sink += RunRowSet(set);
    double s = timer.ElapsedSeconds();
    if (sink == 1) std::printf("!");
    seconds = std::min(seconds, s);
  }
  double cells = static_cast<double>(cells_per_pass) * passes;
  res.ns_per_cell = seconds * 1e9 / cells;
  res.cells_per_sec = cells / seconds;
  return res;
}

// Fork-shaped pair traffic: steps rows two at a time, either through the
// paired entry point (one 16-lane int16 call when active) or through two
// sequential dispatched calls. Returns ns per cell.
double MeasurePairs(RowSet* set, bool paired) {
  const ScoringScheme scheme = ScoringScheme::Default();
  auto pass = [&]() {
    uint64_t sum = 0;
    for (int64_t r = 0; r + 1 < set->rows; r += 2) {
      simd::RowSpec spec[2];
      simd::RowStats stats[2];
      for (int i = 0; i < 2; ++i) {
        size_t off = static_cast<size_t>((r + i) * set->len);
        spec[i].prev_m = set->prev_m.data() + off;
        spec[i].prev_ga = set->prev_ga.data() + off;
        spec[i].prev_diag_m = set->diag_m.data() + off;
        spec[i].delta = set->delta.data() + off;
        spec[i].out_m = set->out_m.data() + off;
        spec[i].out_ga = set->out_ga.data() + off;
        spec[i].out_gb = set->out_gb.data() + off;
        spec[i].len = set->len;
        spec[i].gap_extend = scheme.ss;
        spec[i].gap_open_extend = scheme.sg + scheme.ss;
        spec[i].gb_init = 10;
        spec[i].bound_base = 0;
        spec[i].bound0 = kNegInf;
        spec[i].bound_step = 0;
      }
      if (paired) {
        simd::ComputeRowPair(spec[0], spec[1], &stats[0], &stats[1]);
      } else {
        simd::ComputeRow(spec[0], &stats[0]);
        simd::ComputeRow(spec[1], &stats[1]);
      }
      sum += static_cast<uint32_t>(stats[0].mu_last + stats[1].mu_last);
    }
    return sum;
  };
  const uint64_t cells_per_pass =
      static_cast<uint64_t>(set->len) * static_cast<uint64_t>(set->rows & ~1);
  int passes = 1;
  double seconds = 0;
  for (;;) {
    Timer timer;
    uint64_t sink = 0;
    for (int p = 0; p < passes; ++p) sink += pass();
    seconds = timer.ElapsedSeconds();
    if (sink == 1) std::printf("!");
    if (seconds > 0.05 || passes > 1 << 16) break;
    passes *= 4;
  }
  for (int rep = 0; rep < 6; ++rep) {
    Timer timer;
    uint64_t sink = 0;
    for (int p = 0; p < passes; ++p) sink += pass();
    double s = timer.ElapsedSeconds();
    if (sink == 1) std::printf("!");
    seconds = std::min(seconds, s);
  }
  return seconds * 1e9 / (static_cast<double>(cells_per_pass) * passes);
}

std::string Ns(double ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f ns", ns);
  return buf;
}

std::string Rate(double per_sec) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0fM/s", per_sec / 1e6);
  return buf;
}

std::string Speedup(double scalar_ns, double ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", scalar_ns / ns);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  JsonReport report;
  const simd::DpTier saved = simd::ActiveDpTier();

  const simd::DpTier tiers[] = {simd::DpTier::kScalar, simd::DpTier::kSse2,
                                simd::DpTier::kAvx2, simd::DpTier::kAvx2i16};
  constexpr int kTiers = 4;
  double avx2_long_speedup = -1;
  bool avx2_present = simd::DpTierSupported(simd::DpTier::kAvx2);

  for (int64_t len : {16, 64, 512, 2048}) {
    // Equal cell budget per width so each table line is comparably timed.
    int64_t rows = flags.Q(static_cast<int32_t>(65536 / len));
    RowSet set = MakeRowSet(len, rows, flags.seed + static_cast<uint64_t>(len));
    TierResult results[kTiers];
    for (int t = 0; t < kTiers; ++t) results[t] = MeasureTier(tiers[t], &set);
    simd::SetDpTier(saved);

    std::printf("dna affine rows, len=%lld x %lld rows\n",
                static_cast<long long>(len), static_cast<long long>(rows));
    TablePrinter table({"kernel", "ns/cell", "cells/s", "vs scalar"});
    for (int t = 0; t < kTiers; ++t) {
      if (!results[t].supported) continue;
      if (results[t].checksum != results[0].checksum) {
        std::printf("FATAL: %s kernel disagrees with the scalar oracle\n",
                    simd::DpTierName(tiers[t]));
        return 1;
      }
      table.AddRow({simd::DpTierName(tiers[t]), Ns(results[t].ns_per_cell),
                    Rate(results[t].cells_per_sec),
                    Speedup(results[0].ns_per_cell, results[t].ns_per_cell)});
      report.Add("dna/row" + std::to_string(len) + "/" +
                     simd::DpTierName(tiers[t]),
                 results[t].ns_per_cell, results[t].cells_per_sec);
    }
    std::printf("%s\n", table.ToString().c_str());
    if (len >= 512 && results[2].supported) {
      avx2_long_speedup = std::max(
          avx2_long_speedup, results[0].ns_per_cell / results[2].ns_per_cell);
    }
  }

  // Gap-fork pairing: two 6-cell rows per step, the shape the ALAE engine
  // batches when sibling forks descend the same suffix-trie node.
  if (simd::DpTierSupported(simd::DpTier::kAvx2i16)) {
    RowSet set = MakeRowSet(6, flags.Q(8192), flags.seed + 99);
    simd::SetDpTier(simd::DpTier::kAvx2i16);
    double seq_ns = MeasurePairs(&set, /*paired=*/false);
    double pair_ns = MeasurePairs(&set, /*paired=*/true);
    simd::SetDpTier(saved);
    std::printf("fork pairs, len=6 (avx2_i16)\n");
    TablePrinter table({"entry", "ns/cell", "vs sequential"});
    table.AddRow({"sequential", Ns(seq_ns), "1.00x"});
    table.AddRow({"paired", Ns(pair_ns), Speedup(seq_ns, pair_ns)});
    std::printf("%s\n", table.ToString().c_str());
    report.Add("dna/pair6/sequential", seq_ns, 1e9 / seq_ns);
    report.Add("dna/pair6/paired", pair_ns, 1e9 / pair_ns);
  }

  if (!report.WriteTo(flags.json)) return 1;

  if (!avx2_present) {
    std::printf("AVX2 unavailable on this host; speedup gate skipped\n");
    return 0;
  }
  std::printf(
      "AVX2 row-kernel speedup vs scalar (long DNA rows): %.2fx %s\n",
      avx2_long_speedup,
      avx2_long_speedup >= 3.0 ? "(target >= 3x met)"
                               : "(below the 3x target)");
  return avx2_long_speedup >= 3.0 ? 0 : 2;
}
