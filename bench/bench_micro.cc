// Microbenchmarks (google-benchmark): the substrate kernels — SA-IS
// construction, FM backward search (flat vs wavelet occ), locate, DP cell
// throughput — that determine the constants behind every table.

#include <benchmark/benchmark.h>

#include "src/align/dp.h"
#include "src/baseline/smith_waterman.h"
#include "src/index/fm_index.h"
#include "src/index/qgram_index.h"
#include "src/index/suffix_array.h"
#include "src/sim/generator.h"

namespace alae {
namespace {

Sequence MakeText(int64_t n, bool protein = false) {
  SequenceGenerator gen(1234);
  return gen.Random(n, protein ? Alphabet::Protein() : Alphabet::Dna());
}

void BM_SaIsBuild(benchmark::State& state) {
  Sequence text = MakeText(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildSuffixArray(text.symbols(), 4));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SaIsBuild)->Arg(1 << 16)->Arg(1 << 20);

void BM_FmIndexBuild(benchmark::State& state) {
  Sequence text = MakeText(state.range(0));
  for (auto _ : state) {
    FmIndex fm(text);
    benchmark::DoNotOptimize(fm.text_size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FmIndexBuild)->Arg(1 << 20);

template <bool kWavelet>
void BM_BackwardSearch(benchmark::State& state) {
  Sequence text = MakeText(1 << 20);
  FmIndexOptions options;
  options.use_wavelet = kWavelet;
  FmIndex fm(text, options);
  SequenceGenerator gen(5);
  std::vector<Sequence> patterns;
  for (int i = 0; i < 64; ++i) patterns.push_back(gen.Random(12, Alphabet::Dna()));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fm.Find(patterns[i++ & 63].symbols()));
  }
  state.SetItemsProcessed(state.iterations() * 12);  // steps per search
}
BENCHMARK(BM_BackwardSearch<false>)->Name("BM_BackwardSearch/flat");
BENCHMARK(BM_BackwardSearch<true>)->Name("BM_BackwardSearch/wavelet");

void BM_Locate(benchmark::State& state) {
  Sequence text = MakeText(1 << 20);
  FmIndex fm(text);
  Sequence pat = text.Substr(777, 8);
  SaRange range = fm.Find(pat.symbols());
  for (auto _ : state) {
    benchmark::DoNotOptimize(fm.Locate(range));
  }
  state.SetItemsProcessed(state.iterations() * range.Count());
}
BENCHMARK(BM_Locate);

void BM_SmithWatermanCells(benchmark::State& state) {
  SequenceGenerator gen(6);
  Sequence a = gen.Random(2000, Alphabet::Dna());
  Sequence b = gen.Random(2000, Alphabet::Dna());
  for (auto _ : state) {
    benchmark::DoNotOptimize(BestLocalScore(a, b, ScoringScheme::Default()));
  }
  state.SetItemsProcessed(state.iterations() * 2000 * 2000);
}
BENCHMARK(BM_SmithWatermanCells);

void BM_QGramIndexBuild(benchmark::State& state) {
  SequenceGenerator gen(7);
  Sequence query = gen.Random(state.range(0), Alphabet::Dna());
  for (auto _ : state) {
    QGramIndex index(query, 4);
    benchmark::DoNotOptimize(index.q());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QGramIndexBuild)->Arg(1 << 14);

}  // namespace
}  // namespace alae

BENCHMARK_MAIN();
