// Microbenchmarks (google-benchmark): the substrate kernels — SA-IS
// construction, FM backward search (flat vs wavelet occ), locate, DP cell
// throughput — that determine the constants behind every table, plus the
// api::Aligner facade path (dispatch + validation + sink overhead).

#include <benchmark/benchmark.h>

#include "src/align/dp.h"
#include "src/api/api.h"
#include "src/baseline/smith_waterman.h"
#include "src/index/fm_index.h"
#include "src/index/qgram_index.h"
#include "src/index/suffix_array.h"
#include "src/sim/generator.h"

namespace alae {
namespace {

Sequence MakeText(int64_t n, bool protein = false) {
  SequenceGenerator gen(1234);
  return gen.Random(n, protein ? Alphabet::Protein() : Alphabet::Dna());
}

void BM_SaIsBuild(benchmark::State& state) {
  Sequence text = MakeText(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildSuffixArray(text.symbols(), 4));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SaIsBuild)->Arg(1 << 16)->Arg(1 << 20);

void BM_FmIndexBuild(benchmark::State& state) {
  Sequence text = MakeText(state.range(0));
  for (auto _ : state) {
    FmIndex fm(text);
    benchmark::DoNotOptimize(fm.text_size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FmIndexBuild)->Arg(1 << 20);

template <bool kWavelet>
void BM_BackwardSearch(benchmark::State& state) {
  Sequence text = MakeText(1 << 20);
  FmIndexOptions options;
  options.use_wavelet = kWavelet;
  FmIndex fm(text, options);
  SequenceGenerator gen(5);
  std::vector<Sequence> patterns;
  for (int i = 0; i < 64; ++i) patterns.push_back(gen.Random(12, Alphabet::Dna()));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fm.Find(patterns[i++ & 63].symbols()));
  }
  state.SetItemsProcessed(state.iterations() * 12);  // steps per search
}
BENCHMARK(BM_BackwardSearch<false>)->Name("BM_BackwardSearch/flat");
BENCHMARK(BM_BackwardSearch<true>)->Name("BM_BackwardSearch/wavelet");

void BM_Locate(benchmark::State& state) {
  Sequence text = MakeText(1 << 20);
  FmIndex fm(text);
  Sequence pat = text.Substr(777, 8);
  SaRange range = fm.Find(pat.symbols());
  for (auto _ : state) {
    benchmark::DoNotOptimize(fm.Locate(range));
  }
  state.SetItemsProcessed(state.iterations() * range.Count());
}
BENCHMARK(BM_Locate);

void BM_SmithWatermanCells(benchmark::State& state) {
  SequenceGenerator gen(6);
  Sequence a = gen.Random(2000, Alphabet::Dna());
  Sequence b = gen.Random(2000, Alphabet::Dna());
  for (auto _ : state) {
    benchmark::DoNotOptimize(BestLocalScore(a, b, ScoringScheme::Default()));
  }
  state.SetItemsProcessed(state.iterations() * 2000 * 2000);
}
BENCHMARK(BM_SmithWatermanCells);

// Facade search end to end through a registry-created backend. The
// comparison alae vs bwt-sw on the same request is the paper's headline
// speedup as seen by an API caller.
template <int kBackend>  // 0 = alae, 1 = bwt-sw
void BM_FacadeSearch(benchmark::State& state) {
  SequenceGenerator gen(9);
  Sequence text = gen.Random(1 << 16, Alphabet::Dna());
  api::AlignerRegistry registry(text);
  std::unique_ptr<api::Aligner> aligner =
      *registry.Create(kBackend == 0 ? "alae" : "bwt-sw");
  api::SearchRequest request;
  request.query = gen.HomologousQuery(text, 500, 0.6, 0.2, 0.02);
  request.threshold = 30;
  // Warm the lazily-built shared state outside the timed region.
  if (!aligner->Prepare(request).ok()) {
    state.SkipWithError("prepare failed");
    return;
  }
  for (auto _ : state) {
    api::StatusOr<api::SearchResponse> response = aligner->Search(request);
    benchmark::DoNotOptimize(response->hits.size());
  }
  state.SetItemsProcessed(state.iterations() * request.query.size());
}
BENCHMARK(BM_FacadeSearch<0>)->Name("BM_FacadeSearch/alae");
BENCHMARK(BM_FacadeSearch<1>)->Name("BM_FacadeSearch/bwt-sw");

// Streaming early stop: a top-1 consumer cancels the scan via the HitSink,
// which is the facade's answer to "first hit only" workloads.
void BM_FacadeFirstHit(benchmark::State& state) {
  SequenceGenerator gen(10);
  Sequence text = gen.Random(1 << 16, Alphabet::Dna());
  api::AlignerRegistry registry(text);
  std::unique_ptr<api::Aligner> sw = *registry.Create("sw");
  api::SearchRequest request;
  request.query = gen.HomologousQuery(text, 500, 0.6, 0.2, 0.02);
  request.threshold = 30;
  for (auto _ : state) {
    int32_t best = 0;
    sw->Search(request, [&](const AlignmentHit& hit) {
      best = hit.score;
      return false;  // stop at the first qualifying hit
    });
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_FacadeFirstHit);

void BM_QGramIndexBuild(benchmark::State& state) {
  SequenceGenerator gen(7);
  Sequence query = gen.Random(state.range(0), Alphabet::Dna());
  for (auto _ : state) {
    QGramIndex index(query, 4);
    benchmark::DoNotOptimize(index.q());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QGramIndexBuild)->Arg(1 << 14);

}  // namespace
}  // namespace alae

BENCHMARK_MAIN();
