// Fig 11: index sizes — the BWT index (both occ representations) and the
// dominate index — when varying the text size, for DNA (a) and protein (b).
// Schemes: <1,-3,-5,-2> for DNA (q=4), <1,-3,-11,-1> for protein (q=4),
// as in §7.5.
//
// Paper shape: DNA's dominate index is negligibly small next to the BWT
// index; the protein dominate index is comparatively large for small texts
// and shrinks (relatively) as the text grows.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/util/table_printer.h"

using namespace alae;
using namespace alae::bench;

namespace {

void SizeTable(AlphabetKind kind, const ScoringScheme& scheme,
               const std::vector<int64_t>& sizes, uint64_t seed) {
  TablePrinter table({"n", "BWT index (flat occ)", "BWT index (wavelet)",
                      "SA samples", "dominate index", "dominated grams"});
  for (int64_t n : sizes) {
    Workload w = MakeWorkload(n, 100, 1, kind, seed);
    FmIndexOptions wavelet;
    wavelet.use_wavelet = true;
    AlaeIndex flat(w.text);
    AlaeIndex wave(w.text, wavelet);
    int32_t q = scheme.QPrefixLength();
    const DominationIndex& dom = flat.Domination(q);
    AlaeIndex::Sizes fs = flat.SizeBytes();
    AlaeIndex::Sizes ws = wave.SizeBytes();
    table.AddRow({std::to_string(n), Mb(fs.bwt_bytes), Mb(ws.bwt_bytes),
                  Mb(fs.sample_bytes), Mb(dom.SizeBytes()),
                  std::to_string(dom.num_dominated()) + "/" +
                      std::to_string(dom.num_grams())});
  }
  std::printf("%s", table.ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);

  std::printf("Fig 11(a): DNA index sizes, scheme <1,-3,-5,-2> (q=4)\n");
  SizeTable(AlphabetKind::kDna, ScoringScheme::Default(),
            {flags.N(500'000), flags.N(1'000'000), flags.N(2'000'000),
             flags.N(4'000'000)},
            flags.seed);

  std::printf("\nFig 11(b): protein index sizes, scheme <1,-3,-11,-1> (q=4)\n");
  SizeTable(AlphabetKind::kProtein, ScoringScheme{1, -3, -11, -1},
            {flags.N(250'000), flags.N(500'000), flags.N(1'000'000),
             flags.N(2'000'000)},
            flags.seed);

  std::printf(
      "\nPaper: DNA dominate index mostly too small to be seen next to the\n"
      "BWT index; protein dominate index is large for small texts (98MB at\n"
      "10M) and shrinks as the text grows (8.8MB at 20M).\n");
  return 0;
}
