// Table 2: alignment time and number of alignment results when varying the
// query length m (paper: n = 1 billion, m = 1K..10M; here laptop scale,
// default n = 2M, m = 1K..30K — override with --n/--m/--scale).
//
// Paper shape to reproduce: ALAE and BWT-SW find the same C (exact);
// BLAST finds fewer; ALAE beats BWT-SW at every m; BLAST's advantage only
// appears at extreme m.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/util/table_printer.h"

using namespace alae;
using namespace alae::bench;

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const int64_t n = flags.N(2'000'000);
  const int32_t queries = flags.Q(2);
  const ScoringScheme scheme = ScoringScheme::Default();

  std::printf("Table 2: time and #results vs query length (n=%lld, E=%g)\n",
              static_cast<long long>(n), flags.evalue);
  TablePrinter table({"m", "H", "ALAE time(s)", "ALAE C", "BLAST time(s)",
                      "BLAST C", "BWT-SW time(s)", "BWT-SW C"});

  // Build the text/index once; queries are re-sampled per length.
  Workload base = MakeWorkload(n, 1000, queries, AlphabetKind::kDna,
                               flags.seed);
  AlaeIndex index(base.text);
  FmIndex rev(base.text.Reversed());

  for (int64_t m : {flags.M(1000), flags.M(3000), flags.M(10000),
                    flags.M(30000)}) {
    Workload w = MakeWorkload(n, m, queries, AlphabetKind::kDna, flags.seed);
    w.text = base.text;  // same text/index across the sweep
    int32_t h = ThresholdFor(flags.evalue, m, n, scheme, 4);
    EngineResult alae_r = RunAlae(index, w, scheme, h);
    EngineResult blast_r = RunBlast(w, scheme, h);
    EngineResult bwtsw_r = RunBwtSw(rev, w, scheme, h);
    table.AddRow({std::to_string(m), std::to_string(h),
                  TablePrinter::Fmt(alae_r.seconds),
                  TablePrinter::Fmt(alae_r.hits),
                  TablePrinter::Fmt(blast_r.seconds),
                  TablePrinter::Fmt(blast_r.hits),
                  TablePrinter::Fmt(bwtsw_r.seconds),
                  TablePrinter::Fmt(bwtsw_r.hits)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nPaper (n=1G): ALAE 0.006s..393s, always = BWT-SW's C, > BLAST's C;\n"
      "ALAE faster than BWT-SW at every m and faster than BLAST for m<10M.\n");
  return 0;
}
