// Table 5: number of entries using ALAE under the two stress schemes of
// §7.4 — <1,-1,-5,-2> (mild mismatch: huge gap regions, low reuse) and
// <1,-3,-2,-2> (cheap gaps: small no-gap regions).
//
// Paper shape: <1,-1,-5,-2> calculates vastly more entries than
// <1,-3,-2,-2> (37x at the paper's scale) and has a lower reuse ratio.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/util/table_printer.h"

using namespace alae;
using namespace alae::bench;

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const int64_t n = flags.N(500'000);
  const int64_t m = flags.M(3'000);
  const int32_t queries = flags.Q(2);

  std::printf("Table 5: ALAE entry accounting per scheme (n=%lld, m=%lld)\n",
              static_cast<long long>(n), static_cast<long long>(m));
  TablePrinter table({"scheme", "H", "reused", "accessed", "calculated",
                      "reuse ratio %"});

  Workload w = MakeWorkload(n, m, queries, AlphabetKind::kDna, flags.seed);
  AlaeIndex index(w.text);

  for (const ScoringScheme& scheme :
       {ScoringScheme{1, -1, -5, -2}, ScoringScheme{1, -3, -2, -2}}) {
    int32_t h = ThresholdFor(flags.evalue, m, n, scheme, 4);
    EngineResult r = RunAlae(index, w, scheme, h);
    double reuse_ratio =
        r.counters.Accessed() > 0
            ? 100.0 * static_cast<double>(r.counters.reused) /
                  static_cast<double>(r.counters.Accessed())
            : 0.0;
    table.AddRow({scheme.ToString(), std::to_string(h),
                  TablePrinter::Fmt(r.counters.reused),
                  TablePrinter::Fmt(r.counters.Accessed()),
                  TablePrinter::Fmt(r.counters.Calculated()),
                  TablePrinter::Fmt(reuse_ratio, 1)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nPaper: <1,-1,-5,-2> 30.7M reused / 381.0M accessed / 350.3M calc;\n"
      "<1,-3,-2,-2> 19.0M / 124.8M / 105.8M — the mild-mismatch scheme\n"
      "calculates far more entries with a lower reuse ratio.\n");
  return 0;
}
