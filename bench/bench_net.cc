// Socket front-end latency bench: end-to-end request latency through the
// TCP server (real sockets, framed protocol, streamed responses) as the
// number of concurrent client threads scales 1/2/4, plus an in-process
// SearchStream pass on the same corpus so the wire's own overhead is
// visible as a ratio.
//
//   ./bench_net [--n=...] [--queries=...] [--seed=...] [--json=out.json]
//
// Methodology: one sharded corpus, cache disabled so every request does
// real engine work; each client thread owns one connection and issues its
// queries synchronously (latency = send-to-status wall time), so p50/p90/
// p99 measure queueing + engine + framing, not client-side pipelining.
// Entries land in BENCH_net.json as net/clients/<N> (mean ns per request)
// with net/clients/<N>/p99 companions; compare_bench.py gates the fresh
// run against bench/baselines/BENCH_net.json anchored at net/clients/1,
// which cancels machine speed and tracks the scaling shape.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/obs/metrics.h"
#include "src/service/service.h"
#include "src/util/table_printer.h"
#include "src/util/timer.h"

using namespace alae;
using namespace alae::bench;

namespace {

constexpr int64_t kDefaultN = 400'000;
constexpr int32_t kQueryLen = 64;
constexpr int32_t kDefaultQueries = 32;  // per client thread
constexpr int32_t kThreshold = 24;
constexpr int64_t kOverlap = 2048;

struct Percentiles {
  double p50 = 0, p90 = 0, p99 = 0, mean = 0;
};

// The shared obs nearest-rank summary, so this table and serve_main's
// report agree on what "p99" means.
Percentiles Summarise(const std::vector<double>& seconds) {
  Percentiles p;
  if (seconds.empty()) return p;
  obs::SampleSummary summary;
  for (double s : seconds) summary.Add(s);
  p.p50 = summary.Percentile(0.50);
  p.p90 = summary.Percentile(0.90);
  p.p99 = summary.Percentile(0.99);
  p.mean = summary.mean();
  return p;
}

// One socket pass: `clients` threads, each with its own connection,
// issuing `per_client` synchronous requests. Returns per-request
// latencies; dies on any failed request (a bench must not quietly measure
// errors).
std::vector<double> RunClients(int port, int clients, int per_client,
                               const Workload& w) {
  std::vector<std::vector<double>> lat(clients);
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      net::NetClient client;
      if (api::Status s = client.Connect("127.0.0.1", port); !s.ok()) {
        std::fprintf(stderr, "connect: %s\n", s.ToString().c_str());
        std::exit(1);
      }
      lat[c].reserve(per_client);
      for (int i = 0; i < per_client; ++i) {
        net::WireRequest request;
        request.request_id = static_cast<uint32_t>(i + 1);
        request.backend = "alae";
        request.threshold = kThreshold;
        request.query =
            w.queries[(c + i) % w.queries.size()].ToString();
        Timer timer;
        auto response = client.Call(request);
        if (!response.ok() || response->status.code != net::WireCode::kOk) {
          std::fprintf(stderr, "request failed: %s\n",
                       response.ok() ? response->status.message.c_str()
                                     : response.status().ToString().c_str());
          std::exit(1);
        }
        lat[c].push_back(timer.ElapsedSeconds());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  std::vector<double> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  return all;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchFlags flags = BenchFlags::Parse(argc, argv);
  const int64_t n = flags.N(kDefaultN);
  const int per_client = flags.Q(kDefaultQueries);

  WorkloadSpec spec;
  spec.text_length = n;
  spec.query_length = kQueryLen;
  spec.num_queries = 8;
  spec.homolog_fraction = 1.0;
  spec.seed = flags.seed;
  const Workload w = BuildWorkload(spec);

  service::ShardedCorpusOptions corpus_options;
  corpus_options.overlap = kOverlap;
  corpus_options.shard_size = n / 4 + 2 * kOverlap + 1;  // four shards
  auto corpus = service::ShardedCorpus::Build(w.text, corpus_options);
  if (!corpus.ok()) {
    std::fprintf(stderr, "corpus: %s\n", corpus.status().ToString().c_str());
    return 1;
  }

  service::SchedulerOptions sched_options;
  sched_options.cache_capacity = 0;  // real work on every request
  service::QueryScheduler scheduler(**corpus, sched_options);

  net::NetServer server(&scheduler, net::NetServerOptions{});
  if (api::Status started = server.Start(); !started.ok()) {
    std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
    return 1;
  }

  // In-process reference: the same queries through SearchStream directly,
  // so the table shows what the socket adds on top of the engines.
  {
    std::vector<double> direct;
    for (int i = 0; i < per_client; ++i) {
      api::SearchRequest request;
      request.query = w.queries[i % w.queries.size()];
      request.threshold = kThreshold;
      Timer timer;
      auto stats = scheduler.SearchStream(
          "alae", request, [](const AlignmentHit&) { return true; });
      if (!stats.ok()) {
        std::fprintf(stderr, "direct: %s\n",
                     stats.status().ToString().c_str());
        return 1;
      }
      direct.push_back(timer.ElapsedSeconds());
    }
    Percentiles p = Summarise(direct);
    std::printf("in-process SearchStream: mean %.3f ms, p99 %.3f ms\n\n",
                p.mean * 1e3, p.p99 * 1e3);
  }

  JsonReport report;
  TablePrinter table(
      {"clients", "requests", "qps", "p50 ms", "p90 ms", "p99 ms"});
  // Warm the per-shard aligners once so client 1 does not pay construction.
  RunClients(server.port(), 1, 2, w);
  for (int clients : {1, 2, 4}) {
    Timer wall;
    std::vector<double> lat =
        RunClients(server.port(), clients, per_client, w);
    const double seconds = wall.ElapsedSeconds();
    Percentiles p = Summarise(lat);
    const double qps = static_cast<double>(lat.size()) / seconds;
    table.AddRow({std::to_string(clients), std::to_string(lat.size()),
                  TablePrinter::Fmt(qps, 1),
                  TablePrinter::Fmt(p.p50 * 1e3),
                  TablePrinter::Fmt(p.p90 * 1e3),
                  TablePrinter::Fmt(p.p99 * 1e3)});
    const std::string name = "net/clients/" + std::to_string(clients);
    report.Add(name, p.mean * 1e9, qps);
    report.Add(name + "/p99", p.p99 * 1e9, qps);
  }
  std::printf("%s\n", table.ToString().c_str());

  server.Stop();
  scheduler.Shutdown();

  if (!report.WriteTo(flags.json)) {
    std::fprintf(stderr, "failed to write %s\n", flags.json.c_str());
    return 1;
  }
  return 0;
}
