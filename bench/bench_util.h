#ifndef ALAE_BENCH_BENCH_UTIL_H_
#define ALAE_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/align/counters.h"
#include "src/align/result.h"
#include "src/align/scoring.h"
#include "src/api/api.h"
#include "src/core/alae.h"
#include "src/sim/workload.h"

namespace alae {
namespace bench {

// Minimal --key=value flag parsing shared by the table/figure harnesses.
// Recognised keys: n, m, queries, evalue, seed, scale (a multiplier applied
// to every size so `--scale=4` runs the whole sweep at 4x), and json (a
// path — `--json=out.json` or `--json out.json` — where harnesses that
// support it write a machine-readable report, see JsonReport).
struct BenchFlags {
  int64_t n = 0;          // 0 = use the harness default
  int64_t m = 0;
  int32_t queries = 0;
  double evalue = 10.0;   // the paper's default E
  uint64_t seed = 42;
  double scale = 1.0;
  std::string json;       // empty = no JSON output

  static BenchFlags Parse(int argc, char** argv);

  int64_t N(int64_t fallback) const {
    return n > 0 ? n : static_cast<int64_t>(static_cast<double>(fallback) * scale);
  }
  int64_t M(int64_t fallback) const {
    return m > 0 ? m : static_cast<int64_t>(static_cast<double>(fallback) * scale);
  }
  int32_t Q(int32_t fallback) const { return queries > 0 ? queries : fallback; }
};

// One engine run: wall time plus counters, averaged over the workload's
// queries (the paper reports per-workload averages, §7.1).
struct EngineResult {
  double seconds = 0;
  uint64_t hits = 0;
  DpCounters counters;
};

// Builds the standard homologous-query workload of DESIGN.md §4.
Workload MakeWorkload(int64_t n, int64_t m, int32_t queries,
                      AlphabetKind alphabet = AlphabetKind::kDna,
                      uint64_t seed = 42, double divergence = 0.30);

// Threshold from the paper's E-value conversion (§7).
int32_t ThresholdFor(double evalue, int64_t m, int64_t n,
                     const ScoringScheme& scheme, int sigma);

// Facade driver: runs any api::Aligner over every query of the workload
// through the unified SearchRequest path (`base.query` is overwritten per
// query), aggregating hits and counters like the engine drivers below.
EngineResult RunAligner(const api::Aligner& aligner, const Workload& w,
                        api::SearchRequest base);

// Engine drivers. Each aggregates across all queries of the workload.
EngineResult RunAlae(const AlaeIndex& index, const Workload& w,
                     const ScoringScheme& scheme, int32_t threshold,
                     const AlaeConfig& config = {});
EngineResult RunBwtSw(const FmIndex& rev_index, const Workload& w,
                      const ScoringScheme& scheme, int32_t threshold);
EngineResult RunBlast(const Workload& w, const ScoringScheme& scheme,
                      int32_t threshold);
EngineResult RunSmithWaterman(const Workload& w, const ScoringScheme& scheme,
                              int32_t threshold);

// Human-readable byte count (MB with two decimals).
std::string Mb(size_t bytes);

// Machine-readable benchmark report: one entry per benchmark, written as a
// JSON array of {"name", "ns_per_op", "extends_per_sec"} objects so CI can
// upload BENCH_*.json artifacts and track the perf trajectory over time.
class JsonReport {
 public:
  void Add(std::string name, double ns_per_op, double extends_per_sec);

  // Writes the report to `path`. A no-op returning true when `path` is
  // empty (harness ran without --json); false on I/O failure.
  bool WriteTo(const std::string& path) const;

 private:
  struct Entry {
    std::string name;
    double ns_per_op;
    double extends_per_sec;
  };
  std::vector<Entry> entries_;
};

}  // namespace bench
}  // namespace alae

#endif  // ALAE_BENCH_BENCH_UTIL_H_
