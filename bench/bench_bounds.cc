// §6 analysis: the closed-form upper bound on calculated entries,
// evaluated over the BLAST parameter grid, plus an empirical check that
// measured ALAE entry counts stay below the bound for random DNA.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/stats/entry_bound.h"
#include "src/util/table_printer.h"

using namespace alae;
using namespace alae::bench;

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);

  std::printf("Section 6: entry-bound constants over the BLAST grid\n");
  TablePrinter table({"scheme", "sigma", "q", "k1", "k2", "exponent",
                      "coefficient"});
  for (int sigma : {4, 20}) {
    double lo = 1e18, hi = 0;
    ScoringScheme lo_s, hi_s;
    for (const ScoringScheme& s : BlastSchemeGrid()) {
      EntryBound b = ComputeEntryBound(s, sigma);
      double v = b.exponent;
      if (v < lo) {
        lo = v;
        lo_s = s;
      }
      if (v > hi) {
        hi = v;
        hi_s = s;
      }
    }
    for (const ScoringScheme& s : {lo_s, hi_s}) {
      EntryBound b = ComputeEntryBound(s, sigma);
      table.AddRow({s.ToString(), std::to_string(sigma), std::to_string(b.q),
                    TablePrinter::Fmt(b.k1, 4), TablePrinter::Fmt(b.k2, 4),
                    TablePrinter::Fmt(b.exponent, 4),
                    TablePrinter::Fmt(b.coefficient, 2)});
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "Paper: DNA 4.50*m*n^0.520 .. 9.05*m*n^0.896; protein\n"
      "8.28*m*n^0.364 .. 7.49*m*n^0.723; default DNA scheme 4.47*m*n^0.6038\n"
      "vs BWT-SW's 69*m*n^0.628.\n");

  // Empirical check: the bound models uniform random sequences with forks
  // anchored everywhere (its f(d) counts every positive-scoring substring
  // pair), so compare against a purely random text and query.
  std::printf("\nEmpirical entries vs bound (random DNA, E=%g):\n",
              flags.evalue);
  TablePrinter emp({"n", "m", "measured entries", "bound", "within bound"});
  ScoringScheme scheme = ScoringScheme::Default();
  EntryBound bound = ComputeEntryBound(scheme, 4);
  for (int64_t n : {flags.N(250'000), flags.N(1'000'000)}) {
    int64_t m = flags.M(2'000);
    WorkloadSpec spec;
    spec.text_length = n;
    spec.query_length = m;
    spec.num_queries = 1;
    spec.plant_repeats = false;
    spec.homolog_fraction = 0.0;  // pure random: the analysis model
    spec.seed = flags.seed;
    Workload w = BuildWorkload(spec);
    int32_t h = ThresholdFor(flags.evalue, m, n, scheme, 4);
    AlaeIndex index(w.text);
    EngineResult r = RunAlae(index, w, scheme, h);
    double b = bound.Evaluate(static_cast<double>(m), static_cast<double>(n));
    uint64_t measured = r.counters.Accessed();
    emp.AddRow({std::to_string(n), std::to_string(m),
                TablePrinter::Fmt(measured), TablePrinter::Fmt(b, 0),
                measured <= static_cast<uint64_t>(b) ? "yes" : "NO"});
  }
  std::printf("%s", emp.ToString().c_str());
  return 0;
}
