// Table 3: alignment time and number of alignment results when varying the
// text length n (paper: m = 1M, n = 50M..1G; here default m = 10K,
// n = 0.25M..4M).
//
// Paper shape: ALAE beats both BWT-SW and BLAST across every n; exact C
// equal between ALAE and BWT-SW; BWT-SW's time grows steeply with n while
// ALAE's grows sublinearly.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/util/table_printer.h"

using namespace alae;
using namespace alae::bench;

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const int64_t m = flags.M(10'000);
  const int32_t queries = flags.Q(2);
  const ScoringScheme scheme = ScoringScheme::Default();

  std::printf("Table 3: time and #results vs text length (m=%lld, E=%g)\n",
              static_cast<long long>(m), flags.evalue);
  TablePrinter table({"n", "H", "ALAE time(s)", "ALAE C", "BLAST time(s)",
                      "BLAST C", "BWT-SW time(s)", "BWT-SW C"});

  for (int64_t n : {flags.N(250'000), flags.N(500'000), flags.N(1'000'000),
                    flags.N(2'000'000), flags.N(4'000'000)}) {
    Workload w = MakeWorkload(n, m, queries, AlphabetKind::kDna, flags.seed);
    int32_t h = ThresholdFor(flags.evalue, m, n, scheme, 4);
    AlaeIndex index(w.text);
    FmIndex rev(w.text.Reversed());
    EngineResult alae_r = RunAlae(index, w, scheme, h);
    EngineResult blast_r = RunBlast(w, scheme, h);
    EngineResult bwtsw_r = RunBwtSw(rev, w, scheme, h);
    table.AddRow({std::to_string(n), std::to_string(h),
                  TablePrinter::Fmt(alae_r.seconds),
                  TablePrinter::Fmt(alae_r.hits),
                  TablePrinter::Fmt(blast_r.seconds),
                  TablePrinter::Fmt(blast_r.hits),
                  TablePrinter::Fmt(bwtsw_r.seconds),
                  TablePrinter::Fmt(bwtsw_r.hits)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nPaper (m=1M): ALAE 5.3s..19.3s vs BLAST 18.5s..31.5s vs BWT-SW\n"
      "84.8s..1451.4s; ALAE == BWT-SW in C, both > BLAST.\n");
  return 0;
}
