#include "bench/bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/baseline/blast/blast.h"
#include "src/baseline/bwt_sw.h"
#include "src/baseline/smith_waterman.h"
#include "src/stats/karlin.h"
#include "src/util/timer.h"

namespace alae {
namespace bench {

BenchFlags BenchFlags::Parse(int argc, char** argv) {
  BenchFlags flags;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      size_t len = std::strlen(prefix);
      return std::strncmp(arg, prefix, len) == 0 ? arg + len : nullptr;
    };
    if (const char* v = value("--n=")) flags.n = std::atoll(v);
    else if (const char* v = value("--m=")) flags.m = std::atoll(v);
    else if (const char* v = value("--queries=")) flags.queries = std::atoi(v);
    else if (const char* v = value("--evalue=")) flags.evalue = std::atof(v);
    else if (const char* v = value("--seed=")) flags.seed = std::strtoull(v, nullptr, 10);
    else if (const char* v = value("--scale=")) flags.scale = std::atof(v);
    else if (const char* v = value("--json=")) flags.json = v;
    else if (std::strcmp(arg, "--json") == 0 && i + 1 < argc) flags.json = argv[++i];
    else std::fprintf(stderr, "ignoring unknown flag: %s\n", arg);
  }
  return flags;
}

Workload MakeWorkload(int64_t n, int64_t m, int32_t queries,
                      AlphabetKind alphabet, uint64_t seed, double divergence) {
  WorkloadSpec spec;
  spec.text_length = n;
  spec.query_length = m;
  spec.num_queries = queries;
  spec.alphabet = alphabet;
  spec.seed = seed;
  spec.divergence = divergence;
  return BuildWorkload(spec);
}

int32_t ThresholdFor(double evalue, int64_t m, int64_t n,
                     const ScoringScheme& scheme, int sigma) {
  return KarlinStats::EValueToThreshold(evalue, m, n, scheme, sigma);
}

EngineResult RunAligner(const api::Aligner& aligner, const Workload& w,
                        api::SearchRequest base) {
  EngineResult out;
  Timer timer;
  for (const Sequence& q : w.queries) {
    base.query = q;
    api::StatusOr<api::SearchResponse> response = aligner.Search(base);
    if (!response.ok()) {
      std::fprintf(stderr, "%s: %s\n", std::string(aligner.name()).c_str(),
                   response.status().ToString().c_str());
      std::exit(1);
    }
    out.hits += response->hits.size();
    out.counters.Merge(response->stats.counters);
  }
  out.seconds = timer.ElapsedSeconds() / w.queries.size();
  return out;
}

EngineResult RunAlae(const AlaeIndex& index, const Workload& w,
                     const ScoringScheme& scheme, int32_t threshold,
                     const AlaeConfig& config) {
  EngineResult out;
  Alae alae(index, config);
  Timer timer;
  for (const Sequence& q : w.queries) {
    AlaeRunStats stats;
    ResultCollector hits = alae.Run(q, scheme, threshold, &stats);
    out.hits += hits.size();
    out.counters.Merge(stats.counters);
  }
  out.seconds = timer.ElapsedSeconds() / w.queries.size();
  return out;
}

EngineResult RunBwtSw(const FmIndex& rev_index, const Workload& w,
                      const ScoringScheme& scheme, int32_t threshold) {
  EngineResult out;
  BwtSw engine(rev_index, static_cast<int64_t>(w.text.size()));
  Timer timer;
  for (const Sequence& q : w.queries) {
    DpCounters counters;
    ResultCollector hits = engine.Run(q, scheme, threshold, &counters);
    out.hits += hits.size();
    out.counters.Merge(counters);
  }
  out.seconds = timer.ElapsedSeconds() / w.queries.size();
  return out;
}

EngineResult RunBlast(const Workload& w, const ScoringScheme& scheme,
                      int32_t threshold) {
  EngineResult out;
  Timer timer;
  for (const Sequence& q : w.queries) {
    ResultCollector hits = Blast::Run(w.text, q, scheme, threshold);
    out.hits += hits.size();
  }
  out.seconds = timer.ElapsedSeconds() / w.queries.size();
  return out;
}

EngineResult RunSmithWaterman(const Workload& w, const ScoringScheme& scheme,
                              int32_t threshold) {
  EngineResult out;
  Timer timer;
  for (const Sequence& q : w.queries) {
    ResultCollector hits = SmithWaterman::Run(w.text, q, scheme, threshold);
    out.hits += hits.size();
  }
  out.seconds = timer.ElapsedSeconds() / w.queries.size();
  return out;
}

std::string Mb(size_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f MB",
                static_cast<double>(bytes) / (1024.0 * 1024.0));
  return buf;
}

void JsonReport::Add(std::string name, double ns_per_op,
                     double extends_per_sec) {
  entries_.push_back({std::move(name), ns_per_op, extends_per_sec});
}

bool JsonReport::WriteTo(const std::string& path) const {
  if (path.empty()) return true;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write JSON report to %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    std::fprintf(f,
                 "  {\"name\": \"%s\", \"ns_per_op\": %.3f, "
                 "\"extends_per_sec\": %.1f}%s\n",
                 e.name.c_str(), e.ns_per_op, e.extends_per_sec,
                 i + 1 < entries_.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  bool ok = std::fclose(f) == 0;
  return ok;
}

}  // namespace bench
}  // namespace alae
