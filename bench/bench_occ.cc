// Occ microbench: throughput of the FM-index backward-search hot path for
// the three occ representations — the packed popcount blocks (current flat
// mode), the retired byte-BWT scalar-scan flat occ (reimplemented here as
// the legacy baseline), and the wavelet tree — plus the batched ExtendAll
// trie descent against per-child Extend.
//
//   ./bench_occ [--n=...] [--queries=...] [--seed=...] [--json=out.json]
//
// Two workloads per alphabet: "extend" runs full backward searches over
// text substrings (every step succeeds, so the loop measures sustained
// single-symbol extends), and "descend" walks the suffix trie from the
// root expanding every child (the shape ALAE/BWT-SW descents produce),
// measuring child ranges per second.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/index/bwt.h"
#include "src/index/fm_index.h"
#include "src/index/suffix_array.h"
#include "src/sim/generator.h"
#include "src/util/table_printer.h"
#include "src/util/timer.h"

using namespace alae;
using namespace alae::bench;

namespace {

// The seed repo's flat occ: byte-per-symbol BWT plus u32 checkpoints every
// 64 rows, with the in-block rank a scalar scan over raw bytes. Kept here
// verbatim as the before/after baseline for the packed blocks.
class LegacyScalarFm {
 public:
  explicit LegacyScalarFm(const Sequence& text)
      : n_(text.size()), sigma_(text.sigma()) {
    std::vector<int64_t> sa = BuildSuffixArray(text.symbols(), sigma_);
    bwt_ = BuildBwt(text.symbols(), sa).bwt;
    c_.assign(static_cast<size_t>(sigma_) + 2, 0);
    for (Symbol s : bwt_) ++c_[static_cast<size_t>(s) + 1];
    for (size_t s = 1; s < c_.size(); ++s) c_[s] += c_[s - 1];
    int64_t rows = static_cast<int64_t>(bwt_.size());
    int64_t blocks = rows / kBlock + 1;
    checkpoints_.assign(static_cast<size_t>(blocks * (sigma_ + 1)), 0);
    std::vector<uint32_t> running(static_cast<size_t>(sigma_) + 1, 0);
    for (int64_t i = 0; i < rows; ++i) {
      if (i % kBlock == 0) {
        int64_t b = i / kBlock;
        for (int s = 0; s <= sigma_; ++s) {
          checkpoints_[static_cast<size_t>(b * (sigma_ + 1) + s)] =
              running[static_cast<size_t>(s)];
        }
      }
      ++running[bwt_[static_cast<size_t>(i)]];
    }
    if (rows % kBlock == 0) {
      int64_t b = rows / kBlock;
      for (int s = 0; s <= sigma_; ++s) {
        checkpoints_[static_cast<size_t>(b * (sigma_ + 1) + s)] =
            running[static_cast<size_t>(s)];
      }
    }
  }

  SaRange FullRange() const { return {0, static_cast<int64_t>(n_) + 1}; }

  SaRange Extend(const SaRange& range, Symbol c) const {
    if (range.Empty()) return {0, 0};
    Symbol shifted = static_cast<Symbol>(c + 1);
    int64_t base = c_[shifted];
    return {base + Occ(shifted, range.lo), base + Occ(shifted, range.hi)};
  }

 private:
  static constexpr int64_t kBlock = 64;

  int64_t Occ(Symbol shifted, int64_t row) const {
    int64_t block = row / kBlock;
    int64_t r = checkpoints_[static_cast<size_t>(block * (sigma_ + 1) + shifted)];
    for (int64_t i = block * kBlock; i < row; ++i) {
      if (bwt_[static_cast<size_t>(i)] == shifted) ++r;
    }
    return r;
  }

  size_t n_;
  int sigma_;
  std::vector<int64_t> c_;
  std::vector<Symbol> bwt_;
  std::vector<uint32_t> checkpoints_;
};

struct Measurement {
  double ns_per_op = 0;
  double ops_per_sec = 0;
};

// Repeats full backward searches of `patterns` through `extend` until the
// run is long enough to time, returning per-extend cost. `extend` is any
// callable (range, symbol) -> range starting from `full`.
template <typename ExtendFn>
Measurement MeasureExtends(const std::vector<Sequence>& patterns,
                           const SaRange& full, int reps, ExtendFn&& extend) {
  uint64_t ops = 0;
  int64_t sink = 0;
  Timer timer;
  for (int rep = 0; rep < reps; ++rep) {
    for (const Sequence& pattern : patterns) {
      SaRange range = full;
      for (size_t k = pattern.size(); k-- > 0;) {
        range = extend(range, pattern[k]);
        ++ops;
        if (range.Empty()) break;
      }
      sink += range.lo;
    }
  }
  double seconds = timer.ElapsedSeconds();
  // Keep the optimizer honest about the search results.
  if (sink == -1) std::printf("!");
  Measurement m;
  m.ns_per_op = seconds * 1e9 / static_cast<double>(ops);
  m.ops_per_sec = static_cast<double>(ops) / seconds;
  return m;
}

// Lockstep batched backward searches: `lanes` patterns advance together,
// one ExtendBatch per step, so the per-lane boundary-block misses overlap.
// Patterns must share a length (they do: text substrings of pattern_len).
template <typename BatchFn>
Measurement MeasureBatchedExtends(const std::vector<Sequence>& patterns,
                                  const SaRange& full, int reps, int lanes,
                                  BatchFn&& batch) {
  std::vector<SaRange> cur(static_cast<size_t>(lanes));
  std::vector<SaRange> next(static_cast<size_t>(lanes));
  std::vector<Symbol> cs(static_cast<size_t>(lanes));
  uint64_t ops = 0;
  int64_t sink = 0;
  Timer timer;
  for (int rep = 0; rep < reps; ++rep) {
    for (size_t g = 0; g + static_cast<size_t>(lanes) <= patterns.size();
         g += static_cast<size_t>(lanes)) {
      std::fill(cur.begin(), cur.end(), full);
      for (size_t k = patterns[g].size(); k-- > 0;) {
        for (int i = 0; i < lanes; ++i) {
          cs[static_cast<size_t>(i)] = patterns[g + static_cast<size_t>(i)][k];
        }
        batch(cur.data(), cs.data(), next.data(), lanes);
        cur.swap(next);
        ops += static_cast<uint64_t>(lanes);
      }
      for (int i = 0; i < lanes; ++i) sink += cur[static_cast<size_t>(i)].lo;
    }
  }
  double seconds = timer.ElapsedSeconds();
  if (sink == -1) std::printf("!");
  Measurement m;
  m.ns_per_op = seconds * 1e9 / static_cast<double>(ops);
  m.ops_per_sec = static_cast<double>(ops) / seconds;
  return m;
}

// Expands every child of every node from the root until `node_budget`
// nodes have been expanded, using `expand` (node range -> child ranges in
// out[0..sigma)). Returns per-child-range cost, i.e. batched extends.
template <typename ExpandFn>
Measurement MeasureDescent(const SaRange& full, int sigma, int64_t node_budget,
                           ExpandFn&& expand) {
  std::vector<SaRange> stack;
  std::vector<SaRange> children(static_cast<size_t>(sigma));
  uint64_t ops = 0;
  int64_t nodes = 0;
  Timer timer;
  stack.push_back(full);
  while (!stack.empty() && nodes < node_budget) {
    SaRange node = stack.back();
    stack.pop_back();
    expand(node, children.data());
    ops += static_cast<uint64_t>(sigma);
    ++nodes;
    for (int c = 0; c < sigma; ++c) {
      if (!children[static_cast<size_t>(c)].Empty()) {
        stack.push_back(children[static_cast<size_t>(c)]);
      }
    }
  }
  double seconds = timer.ElapsedSeconds();
  Measurement m;
  m.ns_per_op = seconds * 1e9 / static_cast<double>(ops);
  m.ops_per_sec = static_cast<double>(ops) / seconds;
  return m;
}

std::string Rate(double per_sec) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fM/s", per_sec / 1e6);
  return buf;
}

std::string Ns(double ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f ns", ns);
  return buf;
}

std::string Speedup(double baseline_ns, double ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", baseline_ns / ns);
  return buf;
}

// Returns the packed-vs-legacy speedup on batched trie-descent extends
// (the shape the ALAE / BWT-SW inner loops execute via ExtendAll).
double RunAlphabet(const char* label, AlphabetKind kind, int64_t n,
                   int32_t num_patterns, uint64_t seed, JsonReport* report) {
  SequenceGenerator gen(seed);
  const Alphabet& alphabet = Alphabet::Get(kind);
  Sequence text = gen.Random(n, alphabet);

  FmIndex packed(text);
  FmIndexOptions wavelet_options;
  wavelet_options.use_wavelet = true;
  FmIndex wavelet(text, wavelet_options);
  LegacyScalarFm legacy(text);

  // Text substrings: every backward step of the search succeeds, so the
  // measured loop is pure extend throughput at realistic range sizes.
  const int64_t pattern_len = 48;
  std::vector<Sequence> patterns;
  patterns.reserve(static_cast<size_t>(num_patterns));
  for (int32_t i = 0; i < num_patterns; ++i) {
    int64_t at = static_cast<int64_t>(
        gen.rng().Below(static_cast<uint64_t>(n - pattern_len)));
    patterns.push_back(text.Substr(static_cast<size_t>(at),
                                   static_cast<size_t>(pattern_len)));
  }
  const int reps = 40;
  const int64_t node_budget = 200'000;
  const int sigma = text.sigma();
  const SaRange full = packed.FullRange();

  Measurement ext_packed = MeasureExtends(
      patterns, full, reps,
      [&](const SaRange& r, Symbol c) { return packed.Extend(r, c); });
  Measurement ext_legacy = MeasureExtends(
      patterns, full, reps,
      [&](const SaRange& r, Symbol c) { return legacy.Extend(r, c); });
  Measurement ext_wavelet = MeasureExtends(
      patterns, full, reps,
      [&](const SaRange& r, Symbol c) { return wavelet.Extend(r, c); });

  Measurement desc_packed = MeasureDescent(
      full, sigma, node_budget,
      [&](const SaRange& node, SaRange* out) { packed.ExtendAll(node, out); });
  Measurement desc_legacy = MeasureDescent(
      full, sigma, node_budget, [&](const SaRange& node, SaRange* out) {
        for (int c = 0; c < sigma; ++c) {
          out[c] = legacy.Extend(node, static_cast<Symbol>(c));
        }
      });
  Measurement desc_wavelet = MeasureDescent(
      full, sigma, node_budget,
      [&](const SaRange& node, SaRange* out) { wavelet.ExtendAll(node, out); });

  std::printf("%s, n=%lld, %d patterns x %lld chars x %d reps\n", label,
              static_cast<long long>(n), num_patterns,
              static_cast<long long>(pattern_len), reps);
  TablePrinter table({"workload", "occ structure", "ns/op", "extends/s",
                      "vs legacy"});
  table.AddRow({"extend", "packed blocks", Ns(ext_packed.ns_per_op),
                Rate(ext_packed.ops_per_sec),
                Speedup(ext_legacy.ns_per_op, ext_packed.ns_per_op)});
  table.AddRow({"extend", "legacy scalar", Ns(ext_legacy.ns_per_op),
                Rate(ext_legacy.ops_per_sec), "1.00x"});
  table.AddRow({"extend", "wavelet", Ns(ext_wavelet.ns_per_op),
                Rate(ext_wavelet.ops_per_sec),
                Speedup(ext_legacy.ns_per_op, ext_wavelet.ns_per_op)});
  table.AddRow({"descend", "packed ExtendAll", Ns(desc_packed.ns_per_op),
                Rate(desc_packed.ops_per_sec),
                Speedup(desc_legacy.ns_per_op, desc_packed.ns_per_op)});
  table.AddRow({"descend", "legacy per-child", Ns(desc_legacy.ns_per_op),
                Rate(desc_legacy.ops_per_sec), "1.00x"});
  table.AddRow({"descend", "wavelet ExtendAll", Ns(desc_wavelet.ns_per_op),
                Rate(desc_wavelet.ops_per_sec),
                Speedup(desc_legacy.ns_per_op, desc_wavelet.ns_per_op)});
  std::printf("%s\n", table.ToString().c_str());

  std::string prefix = std::string(label) + "/";
  report->Add(prefix + "extend/packed", ext_packed.ns_per_op,
              ext_packed.ops_per_sec);
  report->Add(prefix + "extend/legacy_scalar", ext_legacy.ns_per_op,
              ext_legacy.ops_per_sec);
  report->Add(prefix + "extend/wavelet", ext_wavelet.ns_per_op,
              ext_wavelet.ops_per_sec);
  report->Add(prefix + "extend_all/packed", desc_packed.ns_per_op,
              desc_packed.ops_per_sec);
  report->Add(prefix + "extend_all/legacy_per_child", desc_legacy.ns_per_op,
              desc_legacy.ops_per_sec);
  report->Add(prefix + "extend_all/wavelet", desc_wavelet.ns_per_op,
              desc_wavelet.ops_per_sec);
  return desc_legacy.ns_per_op / desc_packed.ns_per_op;
}

// Checkpoint-layout series: the two flat layouts for sigma > 4 — the PR 2
// single-level u32-checkpoint blocks ("old packed") against the two-level
// u8-delta blocks — on single extends, batched lockstep extends
// (ExtendBatch) and ExtendAll descents, plus the static block geometry.
// The `occ/layout/` timing family is CI-gated (anchored at the
// single-level single extend); the `occ/size/` entries carry bytes per
// block and occ bits per text char, which are deterministic and excluded
// from the timing gates.
//
// Returns the headline ratio: two-level *batched* single-extend speedup
// over the single-level single extend (the "batched single-extend >= 2x vs
// the old packed layout" acceptance line).
double RunLayoutSeries(const char* label, AlphabetKind kind, int64_t n,
                       int32_t num_patterns, uint64_t seed,
                       JsonReport* report) {
  SequenceGenerator gen(seed);
  const Alphabet& alphabet = Alphabet::Get(kind);
  Sequence text = gen.Random(n, alphabet);

  FmIndexOptions single_options;
  single_options.two_level_occ = false;
  FmIndex single(text, single_options);
  FmIndex two_level(text);  // the default

  const int64_t pattern_len = 48;
  std::vector<Sequence> patterns;
  patterns.reserve(static_cast<size_t>(num_patterns));
  for (int32_t i = 0; i < num_patterns; ++i) {
    int64_t at = static_cast<int64_t>(
        gen.rng().Below(static_cast<uint64_t>(n - pattern_len)));
    patterns.push_back(text.Substr(static_cast<size_t>(at),
                                   static_cast<size_t>(pattern_len)));
  }
  const int reps = 40;
  const int lanes = 16;
  const int sigma = text.sigma();
  const SaRange full = single.FullRange();

  struct Variant {
    const char* name;
    const FmIndex* fm;
    FmOccLayout layout;
  };
  // Mirrors FmIndex::InitOccGeometry's layout choice for sigma > 4.
  const FmOccLayout sl_layout =
      sigma <= 15 ? FmOccLayout::k4Bit : FmOccLayout::kByte;
  const FmOccLayout tl_layout =
      sigma <= 15 ? FmOccLayout::k4BitTwoLevel : FmOccLayout::kByteTwoLevel;
  const Variant variants[] = {
      {"single_level", &single, sl_layout},
      {"two_level", &two_level, tl_layout},
  };

  std::printf("%s checkpoint layouts, n=%lld, %d patterns x %lld chars\n",
              label, static_cast<long long>(n), num_patterns,
              static_cast<long long>(pattern_len));
  TablePrinter table({"layout", "block", "occ bits/char", "extend1",
                      "extend batch16", "extend_all"});
  double single_extend1_ns = 0;
  double two_level_batch_ns = 0;
  for (const Variant& v : variants) {
    Measurement ext1 = MeasureExtends(
        patterns, full, reps,
        [&](const SaRange& r, Symbol c) { return v.fm->Extend(r, c); });
    Measurement extb = MeasureBatchedExtends(
        patterns, full, reps, lanes,
        [&](const SaRange* in, const Symbol* cs, SaRange* out, int count) {
          v.fm->ExtendBatch(in, cs, out, count);
        });
    Measurement desc = MeasureDescent(
        full, sigma, 200'000, [&](const SaRange& node, SaRange* out) {
          v.fm->ExtendAll(node, out);
        });

    const FmOccGeometry geo = FmLayoutGeometry(v.layout);
    const int cp_count = sigma + 1;
    const int block_words = FmLayoutCpWords(v.layout, cp_count) +
                            geo.data_words;
    const double block_bytes = 8.0 * static_cast<double>(block_words);
    const double bits_per_char =
        8.0 * static_cast<double>(v.fm->SizeBytes().bwt_bytes) /
        static_cast<double>(n);

    char block_desc[48];
    std::snprintf(block_desc, sizeof(block_desc), "%.0fB/%d sym",
                  block_bytes, geo.spb);
    char bits_desc[32];
    std::snprintf(bits_desc, sizeof(bits_desc), "%.2f", bits_per_char);
    table.AddRow({v.name, block_desc, bits_desc, Ns(ext1.ns_per_op),
                  Ns(extb.ns_per_op), Ns(desc.ns_per_op)});

    std::string prefix = std::string("occ/layout/") + label + "/" + v.name;
    report->Add(prefix + "/extend1", ext1.ns_per_op, ext1.ops_per_sec);
    report->Add(prefix + "/extend_batch", extb.ns_per_op, extb.ops_per_sec);
    report->Add(prefix + "/extend_all", desc.ns_per_op, desc.ops_per_sec);
    report->Add(std::string("occ/size/") + label + "/" + v.name,
                block_bytes, bits_per_char);

    if (v.fm == &single) single_extend1_ns = ext1.ns_per_op;
    if (v.fm == &two_level) two_level_batch_ns = extb.ns_per_op;
  }
  std::printf("%s\n", table.ToString().c_str());
  return single_extend1_ns / two_level_batch_ns;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  JsonReport report;

  // Default n: large enough that the packed DNA occ (2.67 bits/char) is
  // L2-resident while the legacy byte BWT + checkpoint table (~13.3
  // bits/char) is not — the packed layout's design point.
  double dna_speedup =
      RunAlphabet("dna", AlphabetKind::kDna, flags.N(4'000'000),
                  flags.Q(1'000), flags.seed, &report);
  RunAlphabet("protein", AlphabetKind::kProtein, flags.N(4'000'000) / 4,
              flags.Q(1'000), flags.seed, &report);
  double protein_batched =
      RunLayoutSeries("protein", AlphabetKind::kProtein,
                      flags.N(4'000'000) / 4, flags.Q(1'000), flags.seed,
                      &report);

  if (!report.WriteTo(flags.json)) return 1;

  std::printf(
      "packed DNA speedup on backward-search extends (trie descent): "
      "%.2fx %s\n",
      dna_speedup,
      dna_speedup >= 3.0 ? "(target >= 3x met)" : "(below the 3x target)");
  std::printf(
      "protein two-level batched single-extend vs old packed layout: "
      "%.2fx %s\n",
      protein_batched,
      protein_batched >= 2.0 ? "(target >= 2x met)"
                             : "(below the 2x target)");
  return dna_speedup >= 3.0 ? 0 : 2;
}
