#!/usr/bin/env python3
"""Compares a fresh BENCH_*.json against a checked-in baseline and fails on
throughput regressions.

CI machines differ from the machines baselines were recorded on, so raw
ns_per_op is not comparable across runs. Instead each entry is normalised by
an anchor entry *from the same run* (e.g. the scalar kernel, or the legacy
occ layout): the anchored ratio r = ns(entry) / ns(anchor) cancels the
machine's absolute speed and tracks what the repo actually promises —
relative speedups. An entry regresses when its fresh ratio is more than
--tolerance worse than the baseline ratio:

    fresh_ratio > base_ratio * (1 + tolerance)

Raw mode (--absolute) compares ns_per_op directly, for same-machine use.

Exit codes: 0 ok, 1 regression (or structural mismatch), 2 usage error.

    compare_bench.py --baseline bench/baselines/BENCH_dp.json \
                     --fresh BENCH_dp.json --anchor dna/row512/scalar
    compare_bench.py --self-test
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        entries = json.load(f)
    out = {}
    for e in entries:
        out[e["name"]] = float(e["ns_per_op"])
    return out


def compare(base, fresh, anchor, tolerance, absolute, optional=(), only=None,
            log=print):
    """Returns a list of failure strings (empty = pass).

    Baseline entries whose name contains one of the `optional` substrings
    may be absent from the fresh run (e.g. an ISA tier the runner's CPU
    lacks) — they are skipped with a note instead of failing the gate.

    With `only`, the gate is scoped to baseline entries whose name contains
    that substring (the anchor is always kept): one bench JSON can then
    carry several families gated at different tolerances — e.g. the broad
    scaling curves at 40% and the cancellation-overhead pair at 5%.
    """
    if only is not None:
        base = {n: v for n, v in base.items() if only in n or n == anchor}
        fresh = {n: v for n, v in fresh.items() if only in n or n == anchor}
    failures = []
    if not absolute:
        if anchor not in base:
            return ["anchor %r missing from baseline" % anchor]
        if anchor not in fresh:
            return ["anchor %r missing from fresh run" % anchor]
    base_anchor = 1.0 if absolute else base[anchor]
    fresh_anchor = 1.0 if absolute else fresh[anchor]
    for name, base_ns in sorted(base.items()):
        if name not in fresh:
            if any(sub in name for sub in optional):
                log("%-40s (optional entry absent from fresh run; skipped)"
                    % name)
                continue
            failures.append("entry %r missing from fresh run" % name)
            continue
        base_ratio = base_ns / base_anchor
        fresh_ratio = fresh[name] / fresh_anchor
        limit = base_ratio * (1.0 + tolerance)
        verdict = "FAIL" if fresh_ratio > limit else "ok"
        log(
            "%-40s base %8.3f  fresh %8.3f  limit %8.3f  %s"
            % (name, base_ratio, fresh_ratio, limit, verdict)
        )
        if fresh_ratio > limit:
            failures.append(
                "%s regressed: anchored ns ratio %.3f vs baseline %.3f "
                "(tolerance %d%%)"
                % (name, fresh_ratio, base_ratio, round(tolerance * 100))
            )
    for name in sorted(set(fresh) - set(base)):
        log("%-40s (new entry, not in baseline; ignored)" % name)
    return failures


def self_test():
    """Demonstrates the gate: a >20% anchored regression must fail, noise
    within tolerance and whole-machine slowdowns must pass."""
    base = {"anchor": 10.0, "fast": 2.0, "other": 5.0}

    # Same ratios, machine twice as slow overall: must pass.
    fresh = {"anchor": 20.0, "fast": 4.0, "other": 10.0}
    assert not compare(base, fresh, "anchor", 0.20, False, log=lambda *_: 0)

    # 'fast' loses 30% relative to the anchor: must fail.
    fresh = {"anchor": 10.0, "fast": 2.6, "other": 5.0}
    fails = compare(base, fresh, "anchor", 0.20, False, log=lambda *_: 0)
    assert fails and "fast regressed" in fails[0], fails

    # 15% drift stays within the 20% tolerance: must pass.
    fresh = {"anchor": 10.0, "fast": 2.3, "other": 5.0}
    assert not compare(base, fresh, "anchor", 0.20, False, log=lambda *_: 0)

    # A benchmark disappearing from the fresh run must fail.
    fresh = {"anchor": 10.0, "fast": 2.0}
    fails = compare(base, fresh, "anchor", 0.20, False, log=lambda *_: 0)
    assert any("missing" in f for f in fails), fails

    # ...unless it matches an --optional substring (an ISA tier the runner
    # lacks): then the gate skips it.
    base_t = {"anchor": 10.0, "dna/row16/avx2": 2.0}
    fresh_t = {"anchor": 10.0}
    assert not compare(base_t, fresh_t, "anchor", 0.20, False,
                       optional=("/avx2",), log=lambda *_: 0)

    # --only scopes the gate to one entry family (anchor always kept):
    # a regression outside the family is invisible, inside it still fails.
    base_o = {"anchor": 10.0, "svc/cancel/on": 10.2, "svc/threads/8": 3.0}
    fresh_o = {"anchor": 10.0, "svc/cancel/on": 10.3, "svc/threads/8": 9.0}
    assert not compare(base_o, fresh_o, "anchor", 0.05, False,
                       only="svc/cancel/", log=lambda *_: 0)
    fresh_o = {"anchor": 10.0, "svc/cancel/on": 11.5, "svc/threads/8": 3.0}
    fails = compare(base_o, fresh_o, "anchor", 0.05, False,
                    only="svc/cancel/", log=lambda *_: 0)
    assert fails and "svc/cancel/on regressed" in fails[0], fails
    # A scoped gate must not demand family entries the fresh run lacks
    # outside the family, nor trip on entries it filtered out entirely.
    fresh_o = {"anchor": 10.0, "svc/cancel/on": 10.2}
    assert not compare(base_o, fresh_o, "anchor", 0.05, False,
                       only="svc/cancel/", log=lambda *_: 0)

    # Absolute mode: raw 25% slowdown fails, 10% passes.
    assert compare({"a": 4.0}, {"a": 5.0}, None, 0.20, True, log=lambda *_: 0)
    assert not compare({"a": 4.0}, {"a": 4.4}, None, 0.20, True,
                       log=lambda *_: 0)

    print("self-test ok")
    return 0


def main(argv):
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("--baseline", help="checked-in bench/baselines/*.json")
    p.add_argument("--fresh", help="JSON produced by this run")
    p.add_argument("--anchor", help="entry name used to normalise ns_per_op")
    p.add_argument("--tolerance", type=float, default=0.20,
                   help="allowed relative regression (default 0.20)")
    p.add_argument("--absolute", action="store_true",
                   help="compare raw ns_per_op instead of anchored ratios")
    p.add_argument("--optional", action="append", default=[],
                   help="substring of baseline entries allowed to be absent "
                        "from the fresh run (repeatable, e.g. an ISA tier "
                        "the runner's CPU lacks)")
    p.add_argument("--only",
                   help="scope the gate to entries whose name contains this "
                        "substring (the anchor is always kept)")
    p.add_argument("--self-test", action="store_true",
                   help="run the built-in regression-gate demonstration")
    args = p.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.baseline or not args.fresh:
        p.error("--baseline and --fresh are required (or use --self-test)")
    if not args.absolute and not args.anchor:
        p.error("--anchor is required in ratio mode")

    base = load(args.baseline)
    fresh = load(args.fresh)
    failures = compare(base, fresh, args.anchor, args.tolerance,
                       args.absolute, optional=tuple(args.optional),
                       only=args.only)
    if failures:
        print("\nbench regression gate FAILED:")
        for f in failures:
            print("  - " + f)
        return 1
    gated = (len(base) if args.only is None else
             len([n for n in base if args.only in n or n == args.anchor]))
    print("\nbench regression gate passed (%d entries)" % gated)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
