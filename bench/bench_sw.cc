// §7.1's opening anecdote: the Smith-Waterman algorithm versus ALAE on one
// workload ("SW took 7.7 hours to align a 10K query against a 50M text;
// ALAE only took 25ms"). Scaled down so the full-matrix run stays in
// seconds.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/util/table_printer.h"

using namespace alae;
using namespace alae::bench;

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const int64_t n = flags.N(500'000);
  const int64_t m = flags.M(2'000);
  const ScoringScheme scheme = ScoringScheme::Default();
  const int32_t h = ThresholdFor(flags.evalue, m, n, scheme, 4);

  std::printf("Smith-Waterman vs ALAE (n=%lld, m=%lld, H=%d)\n",
              static_cast<long long>(n), static_cast<long long>(m), h);
  Workload w = MakeWorkload(n, m, flags.Q(1), AlphabetKind::kDna, flags.seed);
  AlaeIndex index(w.text);

  EngineResult sw = RunSmithWaterman(w, scheme, h);
  EngineResult alae_r = RunAlae(index, w, scheme, h);

  TablePrinter table({"engine", "time (s)", "results", "DP cells"});
  table.AddRow({"Smith-Waterman", TablePrinter::Fmt(sw.seconds),
                TablePrinter::Fmt(sw.hits),
                TablePrinter::Fmt(static_cast<uint64_t>(n) *
                                  static_cast<uint64_t>(m))});
  table.AddRow({"ALAE", TablePrinter::Fmt(alae_r.seconds),
                TablePrinter::Fmt(alae_r.hits),
                TablePrinter::Fmt(alae_r.counters.Accessed())});
  std::printf("%s", table.ToString().c_str());
  std::printf("speedup: %.1fx; identical result sets by the exactness "
              "property tests.\n",
              sw.seconds / alae_r.seconds);
  std::printf("\nPaper: SW 7.7 hours vs ALAE 25 ms at n=50M, m=10K.\n");
  return 0;
}
