// Fig 9: alignment time of BWT-SW / BLAST / ALAE under the four
// representative scoring schemes (E=10, paper m=100K; here default m=3K,
// n=0.5M — the <1,-1,-5,-2> scheme explodes the positive DP area, exactly
// as the paper discusses, so the default scale is kept modest).
//
// Paper shape: exact engines are scheme-sensitive, BLAST is flat; ALAE
// beats BWT-SW on every scheme (119x / 65x at paper scale); BLAST beats
// ALAE only on <1,-1,-5,-2>. BWT-SW has no <1,-1,-5,-2> entry: it
// requires |sb| >= 3|sa|.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/util/table_printer.h"

using namespace alae;
using namespace alae::bench;

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const int64_t n = flags.N(500'000);
  const int64_t m = flags.M(3'000);

  std::printf("Fig 9: time vs scoring scheme (n=%lld, m=%lld, E=%g)\n",
              static_cast<long long>(n), static_cast<long long>(m),
              flags.evalue);
  TablePrinter table({"scheme", "H", "BWT-SW (s)", "BLAST (s)", "ALAE (s)"});

  Workload w = MakeWorkload(n, m, flags.Q(2), AlphabetKind::kDna, flags.seed);
  AlaeIndex index(w.text);
  FmIndex rev(w.text.Reversed());

  for (int idx = 0; idx < 4; ++idx) {
    ScoringScheme scheme = ScoringScheme::Fig9(idx);
    int32_t h = ThresholdFor(flags.evalue, m, n, scheme, 4);
    EngineResult alae_r = RunAlae(index, w, scheme, h);
    EngineResult blast_r = RunBlast(w, scheme, h);
    // The original BWT-SW requires |sb| >= 3|sa| (paper §2.4); mirror its
    // absence for <1,-1,-5,-2>. Our implementation could run it, but the
    // figure reproduces the paper's comparison.
    bool bwtsw_supported = -scheme.sb >= 3 * scheme.sa;
    std::string bwtsw_cell = "n/a (|sb|<3|sa|)";
    if (bwtsw_supported) {
      EngineResult bwtsw_r = RunBwtSw(rev, w, scheme, h);
      bwtsw_cell = TablePrinter::Fmt(bwtsw_r.seconds);
    }
    table.AddRow({scheme.ToString(), std::to_string(h), bwtsw_cell,
                  TablePrinter::Fmt(blast_r.seconds),
                  TablePrinter::Fmt(alae_r.seconds)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nPaper (m=100K, n=1G): ALAE 119x faster than BWT-SW on the default\n"
      "scheme, 65x on <1,-4,-5,-2>; slower than BLAST only on <1,-1,-5,-2>.\n");
  return 0;
}
