// Live-corpus bench: what mutability costs the query path.
//
// Three measurements:
//   1. Query latency vs outstanding delta shards (0/2/4/8 deltas over the
//      same base) — the read-amplification curve of the log-structured
//      design, and the CI trend gate for it (anchored at live/deltas/0,
//      which is the immutable sharded service this layer wraps).
//   2. Append latency — the synchronous cost of indexing one document
//      into a delta shard (build + epoch swap, what a writer waits for).
//   3. Compaction pause — how long an explicit compaction blocks writers,
//      and what queries observe while a *background* compaction runs
//      (they should keep serving from the old snapshot throughout).
//
//   ./bench_live [--n=...] [--queries=...] [--seed=...] [--json=out.json]
//
// Methodology matches bench_service: caches disabled so engines do real
// work, min-of-rounds wall time with rounds interleaved across the delta
// counts so machine-speed drift cancels out of the curve, and a per-
// configuration hit checksum so a merge bug at the base/delta frontier
// cannot masquerade as a speedup. Only the live/deltas/* series is
// baseline-gated; append and compaction numbers are machine-absolute and
// reported for the record.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/service/service.h"
#include "src/sim/generator.h"
#include "src/util/table_printer.h"
#include "src/util/timer.h"

using namespace alae;
using namespace alae::bench;

namespace {

constexpr int64_t kOverlap = 2048;
constexpr int64_t kAppendLen = 4000;
constexpr int32_t kQueryLen = 64;
constexpr int32_t kThreshold = 24;
constexpr int kRounds = 3;

service::LiveCorpusOptions LiveOptions(int64_t n) {
  service::LiveCorpusOptions options;
  options.base.overlap = kOverlap;
  options.base.shard_size = n / 4 + 2 * kOverlap + 1;  // ~4 base shards
  options.compact_after_deltas = 0;  // manual compaction only
  options.background_compaction = false;
  return options;
}

std::unique_ptr<service::LiveCorpus> BuildLive(
    const Sequence& text, const service::LiveCorpusOptions& options) {
  auto corpus = service::LiveCorpus::Build(text, options);
  if (!corpus.ok()) {
    std::fprintf(stderr, "live corpus build failed: %s\n",
                 corpus.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(corpus).value();
}

struct RunResult {
  double seconds = 0;  // best-of-rounds wall time for the whole batch
  uint64_t hit_checksum = 0;
};

// One timed pass of the batch; min-of-rounds seconds, checksum must agree
// across every round that shares a result (same corpus state).
void RunOnce(service::QueryScheduler& scheduler,
             const std::vector<api::SearchRequest>& requests, bool first,
             RunResult* result) {
  Timer timer;
  std::vector<api::QueryOutcome> outcomes =
      scheduler.SearchBatch("alae", requests);
  const double seconds = timer.ElapsedSeconds();
  uint64_t checksum = 0;
  for (const api::QueryOutcome& o : outcomes) {
    if (!o.ok()) {
      std::fprintf(stderr, "query failed: %s\n", o.status.ToString().c_str());
      std::exit(1);
    }
    for (const AlignmentHit& hit : o.response.hits) {
      checksum = checksum * 1315423911ULL +
                 static_cast<uint64_t>(hit.text_end * 31 + hit.query_end) *
                     static_cast<uint64_t>(hit.score);
    }
  }
  if (first) {
    result->hit_checksum = checksum;
    result->seconds = seconds;
  } else {
    if (checksum != result->hit_checksum) {
      std::fprintf(stderr, "hit checksum diverged across rounds\n");
      std::exit(1);
    }
    result->seconds = std::min(result->seconds, seconds);
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const int64_t n = flags.N(1 << 19);
  const int32_t num_queries = flags.Q(48);

  SequenceGenerator gen(flags.seed);
  Sequence text = gen.Random(n, Alphabet::Dna());
  std::vector<api::SearchRequest> requests;
  requests.reserve(static_cast<size_t>(num_queries));
  for (int32_t q = 0; q < num_queries; ++q) {
    api::SearchRequest request;
    request.query = gen.HomologousQuery(text, kQueryLen, 0.7, 0.3, 0.01);
    request.threshold = kThreshold;
    requests.push_back(std::move(request));
  }
  // The appended documents are identical across configurations so the
  // deltas/2 corpus is a strict prefix-state of deltas/8.
  std::vector<Sequence> appends;
  for (int d = 0; d < 8; ++d) {
    appends.push_back(gen.Random(kAppendLen, Alphabet::Dna()));
  }

  JsonReport report;
  TablePrinter table({"config", "deltas", "sec/batch", "qps", "ns/query"});

  // --- 1. Query latency vs outstanding delta shards. One corpus per
  // point, rounds interleaved across the points.
  const size_t delta_counts[] = {0, 2, 4, 8};
  std::vector<std::unique_ptr<service::LiveCorpus>> corpora;
  std::vector<std::unique_ptr<service::QueryScheduler>> schedulers;
  double append_ns_total = 0;
  size_t append_ops = 0;
  for (size_t deltas : delta_counts) {
    corpora.push_back(BuildLive(text, LiveOptions(n)));
    for (size_t d = 0; d < deltas; ++d) {
      Timer timer;  // --- 2. Append latency, folded across all corpora.
      auto id = corpora.back()->AppendDocument(appends[d]);
      append_ns_total += timer.ElapsedSeconds() * 1e9;
      ++append_ops;
      if (!id.ok()) {
        std::fprintf(stderr, "append failed: %s\n",
                     id.status().ToString().c_str());
        return 1;
      }
    }
    schedulers.push_back(std::make_unique<service::QueryScheduler>(
        *corpora.back(), service::SchedulerOptions{.threads = 4,
                                                   .queue_capacity = 1 << 16,
                                                   .cache_capacity = 0}));
  }
  RunResult results[4];
  for (int round = 0; round < kRounds; ++round) {
    for (size_t s = 0; s < corpora.size(); ++s) {
      RunOnce(*schedulers[s], requests, round == 0, &results[s]);
    }
  }
  double ns_d0 = 0, ns_d8 = 0;
  for (size_t s = 0; s < corpora.size(); ++s) {
    const RunResult& r = results[s];
    const double ns = r.seconds * 1e9 / static_cast<double>(num_queries);
    if (delta_counts[s] == 0) ns_d0 = ns;
    if (delta_counts[s] == 8) ns_d8 = ns;
    report.Add("live/deltas/" + std::to_string(delta_counts[s]), ns,
               static_cast<double>(num_queries) / r.seconds);
    table.AddRow({"deltas=" + std::to_string(delta_counts[s]),
                  std::to_string(corpora[s]->num_deltas()),
                  TablePrinter::Fmt(r.seconds),
                  TablePrinter::Fmt(num_queries / r.seconds, 1),
                  TablePrinter::Fmt(static_cast<uint64_t>(ns))});
  }
  const double append_ns = append_ns_total / static_cast<double>(append_ops);
  report.Add("live/append", append_ns, 1e9 / append_ns);

  // --- 3a. Compaction pause: how long an explicit (writer-blocking)
  // compaction of base + 8 deltas + a tombstone takes.
  double compact_seconds = 0;
  {
    service::LiveCorpus& live = *corpora.back();  // the 8-delta corpus
    if (api::Status s = live.DeleteDocument(1); !s.ok()) {
      std::fprintf(stderr, "delete failed: %s\n", s.ToString().c_str());
      return 1;
    }
    Timer timer;
    if (api::Status s = live.Compact(); !s.ok()) {
      std::fprintf(stderr, "compact failed: %s\n", s.ToString().c_str());
      return 1;
    }
    compact_seconds = timer.ElapsedSeconds();
    report.Add("live/compact", compact_seconds * 1e9, 1.0 / compact_seconds);
  }

  // --- 3b. Queries during a background compaction: they serve from the
  // pre-compaction snapshot and should see ordinary latency, not the
  // pause. The trigger threshold fires on the 4th append; we then query
  // until the background worker publishes the new epoch.
  double during_ns = 0;
  {
    service::LiveCorpusOptions options = LiveOptions(n);
    options.compact_after_deltas = 4;
    options.background_compaction = true;
    std::unique_ptr<service::LiveCorpus> live = BuildLive(text, options);
    for (size_t d = 0; d < 4; ++d) {
      auto id = live->AppendDocument(appends[d]);
      if (!id.ok()) {
        std::fprintf(stderr, "append failed: %s\n",
                     id.status().ToString().c_str());
        return 1;
      }
    }
    service::QueryScheduler scheduler(
        *live, {.threads = 4, .queue_capacity = 1 << 16, .cache_capacity = 0});
    double total_ns = 0;
    int during = 0;
    int i = 0;
    while (live->compactions() == 0 && during < 256) {
      Timer timer;
      auto response = scheduler.Search(
          "alae", requests[static_cast<size_t>(i++) % requests.size()]);
      if (!response.ok()) {
        std::fprintf(stderr, "query during compaction failed: %s\n",
                     response.status().ToString().c_str());
        return 1;
      }
      total_ns += timer.ElapsedSeconds() * 1e9;
      ++during;
    }
    if (during > 0) {
      during_ns = total_ns / during;
      report.Add("live/query_during_compaction", during_ns,
                 1e9 / during_ns);
      std::printf(
          "queries served while the background compaction ran: %d "
          "(%.0f ns each, vs %.0f ns on the quiet 0-delta corpus)\n",
          during, during_ns, ns_d0);
    } else {
      std::printf(
          "background compaction finished before any query could race it "
          "(corpus too small to measure overlap)\n");
    }
  }

  std::printf("%s", table.ToString().c_str());
  const double delta_ratio = ns_d0 > 0 ? ns_d8 / ns_d0 : 0;
  std::printf("\nper-query cost, 8 deltas vs 0: %.2fx "
              "(read amplification of the unmerged log)\n",
              delta_ratio);
  std::printf("append latency: %.0f ns/doc (%lld-char documents)\n",
              append_ns, static_cast<long long>(kAppendLen));
  std::printf("explicit compaction of base+8 deltas+1 tombstone: %.3f s\n",
              compact_seconds);

  if (!report.WriteTo(flags.json)) {
    std::fprintf(stderr, "failed writing %s\n", flags.json.c_str());
    return 1;
  }
  return 0;
}
