// Fig 10: filtering ratio and reusing ratio per scoring scheme (E=10).
//
// Paper shape: <1,-3,-5,-2> and <1,-4,-5,-2> filter best; <1,-1,-5,-2>
// has by far the lowest reuse ratio (expanded gap regions); <1,-3,-2,-2>
// filters worst because |sg+ss| is small (tiny no-gap regions).

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/util/table_printer.h"

using namespace alae;
using namespace alae::bench;

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const int64_t n = flags.N(500'000);

  std::printf("Fig 10: filtering/reusing ratio vs scheme (n=%lld, E=%g)\n",
              static_cast<long long>(n), flags.evalue);
  TablePrinter table({"scheme", "m", "filtering %", "reusing %"});

  Workload base = MakeWorkload(n, 1000, flags.Q(2), AlphabetKind::kDna,
                               flags.seed);
  AlaeIndex index(base.text);
  FmIndex rev(base.text.Reversed());

  for (int idx = 0; idx < 4; ++idx) {
    ScoringScheme scheme = ScoringScheme::Fig9(idx);
    for (int64_t m : {flags.M(1000), flags.M(3000)}) {
      Workload w =
          MakeWorkload(n, m, flags.Q(2), AlphabetKind::kDna, flags.seed);
      w.text = base.text;
      int32_t h = ThresholdFor(flags.evalue, m, n, scheme, 4);
      EngineResult alae_r = RunAlae(index, w, scheme, h);
      EngineResult bwtsw_r = RunBwtSw(rev, w, scheme, h);
      uint64_t bw = bwtsw_r.counters.Calculated();
      uint64_t al = alae_r.counters.Calculated();
      double filtering =
          bw > 0 ? 100.0 * static_cast<double>(bw - std::min(bw, al)) /
                       static_cast<double>(bw)
                 : 0.0;
      double reusing =
          alae_r.counters.Accessed() > 0
              ? 100.0 * static_cast<double>(alae_r.counters.reused) /
                    static_cast<double>(alae_r.counters.Accessed())
              : 0.0;
      table.AddRow({scheme.ToString(), std::to_string(m),
                    TablePrinter::Fmt(filtering, 1),
                    TablePrinter::Fmt(reusing, 1)});
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nPaper: filtering ~75%% for <1,-3,-5,-2>/<1,-4,-5,-2>, lower for\n"
      "<1,-3,-2,-2>; reusing lowest for <1,-1,-5,-2>.\n");
  return 0;
}
