// Table 4: number of calculated entries and their computation costs
// (paper: n = 1G, scheme <1,-3,-5,-2>, m = 10K/100K/1M). ALAE's entries
// split into x1 (no-gap regions, Eq. 3), x2 (fork boundaries) and x3
// (gap-region interiors); every BWT-SW entry costs x3.
//
// Paper shape: ALAE's weighted cost is ~2.5x below BWT-SW's, with most
// ALAE entries in the cheap buckets.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/util/table_printer.h"

using namespace alae;
using namespace alae::bench;

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const int64_t n = flags.N(2'000'000);
  const int32_t queries = flags.Q(2);
  const ScoringScheme scheme = ScoringScheme::Default();

  std::printf(
      "Table 4: calculated entries x cost (n=%lld, scheme %s, E=%g)\n",
      static_cast<long long>(n), scheme.ToString().c_str(), flags.evalue);
  TablePrinter table({"m", "ALAE x1", "ALAE x2", "ALAE x3", "ALAE cost",
                      "BWT-SW x3", "BWT-SW cost", "cost ratio"});

  Workload base = MakeWorkload(n, 1000, queries, AlphabetKind::kDna,
                               flags.seed);
  AlaeIndex index(base.text);
  FmIndex rev(base.text.Reversed());

  for (int64_t m : {flags.M(1000), flags.M(10'000), flags.M(30'000)}) {
    Workload w = MakeWorkload(n, m, queries, AlphabetKind::kDna, flags.seed);
    w.text = base.text;
    int32_t h = ThresholdFor(flags.evalue, m, n, scheme, 4);
    EngineResult alae_r = RunAlae(index, w, scheme, h);
    EngineResult bwtsw_r = RunBwtSw(rev, w, scheme, h);
    double ratio = static_cast<double>(bwtsw_r.counters.ComputationCost()) /
                   static_cast<double>(alae_r.counters.ComputationCost());
    table.AddRow({std::to_string(m),
                  TablePrinter::Fmt(alae_r.counters.cells_cost1),
                  TablePrinter::Fmt(alae_r.counters.cells_cost2),
                  TablePrinter::Fmt(alae_r.counters.cells_cost3),
                  TablePrinter::Fmt(alae_r.counters.ComputationCost()),
                  TablePrinter::Fmt(bwtsw_r.counters.cells_cost3),
                  TablePrinter::Fmt(bwtsw_r.counters.ComputationCost()),
                  TablePrinter::Fmt(ratio, 2)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nPaper (n=1G): m=10K ALAE 1.23M cost vs BWT-SW 3.74M (3.0x);\n"
      "m=1M ALAE 319.5M vs BWT-SW 813.1M (2.5x).\n");
  return 0;
}
