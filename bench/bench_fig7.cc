// Fig 7: filtering ratio and reusing ratio under <1,-3,-5,-2>, E=10.
//  (a)/(b): vs query length for several text lengths.
//  (c)/(d): vs text length for several query lengths.
//
// Filtering ratio = entries BWT-SW calculates that ALAE proves meaningless
// / BWT-SW's calculated entries (paper Eq. 5); reusing ratio = reused /
// accessed (Eq. 6).
//
// Paper shape: filtering ratio decreases with m (75.3% -> 51.8%), reusing
// ratio increases with m (16.2% -> 31.5%); both are stable in n.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/util/table_printer.h"

using namespace alae;
using namespace alae::bench;

namespace {

struct Ratios {
  double filtering = 0;
  double reusing = 0;
};

Ratios Measure(const Workload& w, const AlaeIndex& index, const FmIndex& rev,
               double evalue) {
  const ScoringScheme scheme = ScoringScheme::Default();
  int32_t h = ThresholdFor(evalue, static_cast<int64_t>(w.queries[0].size()),
                           static_cast<int64_t>(w.text.size()), scheme, 4);
  EngineResult alae_r = RunAlae(index, w, scheme, h);
  EngineResult bwtsw_r = RunBwtSw(rev, w, scheme, h);
  Ratios out;
  uint64_t bw = bwtsw_r.counters.Calculated();
  uint64_t al = alae_r.counters.Calculated();
  out.filtering = bw > 0 ? 100.0 * static_cast<double>(bw - std::min(bw, al)) /
                               static_cast<double>(bw)
                         : 0.0;
  out.reusing = alae_r.counters.Accessed() > 0
                    ? 100.0 * static_cast<double>(alae_r.counters.reused) /
                          static_cast<double>(alae_r.counters.Accessed())
                    : 0.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);

  std::printf("Fig 7(a,b): ratios vs query length m, scheme <1,-3,-5,-2>\n");
  TablePrinter ab({"n", "m", "filtering %", "reusing %"});
  for (int64_t n : {flags.N(500'000), flags.N(1'000'000), flags.N(2'000'000)}) {
    Workload base = MakeWorkload(n, 1000, flags.Q(2), AlphabetKind::kDna,
                                 flags.seed);
    AlaeIndex index(base.text);
    FmIndex rev(base.text.Reversed());
    for (int64_t m : {flags.M(1000), flags.M(3000), flags.M(10'000),
                      flags.M(30'000)}) {
      Workload w =
          MakeWorkload(n, m, flags.Q(2), AlphabetKind::kDna, flags.seed);
      w.text = base.text;
      Ratios r = Measure(w, index, rev, flags.evalue);
      ab.AddRow({std::to_string(n), std::to_string(m),
                 TablePrinter::Fmt(r.filtering, 1),
                 TablePrinter::Fmt(r.reusing, 1)});
    }
  }
  std::printf("%s", ab.ToString().c_str());

  std::printf("\nFig 7(c,d): ratios vs text length n\n");
  TablePrinter cd({"m", "n", "filtering %", "reusing %"});
  for (int64_t m : {flags.M(3000), flags.M(10'000)}) {
    for (int64_t n : {flags.N(500'000), flags.N(1'000'000),
                      flags.N(2'000'000), flags.N(4'000'000)}) {
      Workload w =
          MakeWorkload(n, m, flags.Q(2), AlphabetKind::kDna, flags.seed);
      AlaeIndex index(w.text);
      FmIndex rev(w.text.Reversed());
      Ratios r = Measure(w, index, rev, flags.evalue);
      cd.AddRow({std::to_string(m), std::to_string(n),
                 TablePrinter::Fmt(r.filtering, 1),
                 TablePrinter::Fmt(r.reusing, 1)});
    }
  }
  std::printf("%s", cd.ToString().c_str());
  std::printf(
      "\nPaper: filtering 75.3%%->51.8%% as m grows 1K->10M; reusing\n"
      "16.2%%->31.5%% as m grows 10K->10M; both flat in n (Fig 7c,d).\n");
  return 0;
}
