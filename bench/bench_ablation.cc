// Ablation (DESIGN.md): contribution of each ALAE technique. Each row
// disables exactly one feature of the full configuration; the last rows
// show q=1 anchoring (prefix filter off) and everything off. All
// configurations are exact (verified by the property tests); only work
// changes.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/util/table_printer.h"

using namespace alae;
using namespace alae::bench;

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const int64_t n = flags.N(1'000'000);
  const int64_t m = flags.M(10'000);
  const ScoringScheme scheme = ScoringScheme::Default();
  const int32_t h = ThresholdFor(flags.evalue, m, n, scheme, 4);

  std::printf("Ablation: per-filter contribution (n=%lld, m=%lld, H=%d)\n",
              static_cast<long long>(n), static_cast<long long>(m), h);
  Workload w = MakeWorkload(n, m, flags.Q(2), AlphabetKind::kDna, flags.seed);
  // The facade: one indexed registry, one "alae" backend, per-variant
  // configs ride in on the request.
  api::AlignerRegistry registry(w.text);
  std::unique_ptr<api::Aligner> alae = *registry.Create("alae");

  struct Variant {
    const char* name;
    AlaeConfig config;
  };
  std::vector<Variant> variants;
  variants.push_back({"full ALAE", AlaeConfig{}});
  {
    AlaeConfig c;
    c.length_filter = false;
    variants.push_back({"- length filter", c});
  }
  {
    AlaeConfig c;
    c.score_filter = false;
    variants.push_back({"- score filter", c});
  }
  {
    AlaeConfig c;
    c.domination_filter = false;
    variants.push_back({"- domination", c});
  }
  {
    AlaeConfig c;
    c.reuse = false;
    variants.push_back({"- reuse", c});
  }
  {
    AlaeConfig c;
    c.prefix_filter = false;
    variants.push_back({"- prefix filter (q=1)", c});
  }
  {
    AlaeConfig c;
    c.length_filter = false;
    c.score_filter = false;
    c.domination_filter = false;
    c.reuse = false;
    variants.push_back({"filters off (q-forks only)", c});
  }

  TablePrinter table({"variant", "time (s)", "calculated", "cost", "reused",
                      "forks", "results"});
  for (const Variant& v : variants) {
    api::SearchRequest base;
    base.scheme = scheme;
    base.threshold = h;
    base.alae = v.config;
    EngineResult r = RunAligner(*alae, w, base);
    table.AddRow({v.name, TablePrinter::Fmt(r.seconds),
                  TablePrinter::Fmt(r.counters.Calculated()),
                  TablePrinter::Fmt(r.counters.ComputationCost()),
                  TablePrinter::Fmt(r.counters.reused),
                  TablePrinter::Fmt(r.counters.forks_opened),
                  TablePrinter::Fmt(r.hits)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nEvery variant reports the same results (exactness holds "
              "with any filter subset).\n");
  return 0;
}
